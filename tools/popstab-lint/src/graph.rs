//! The workspace item graph: every parsed file's items linked into a
//! symbol table with approximate call edges.
//!
//! Edges are *name-based*: a token `foo` followed by `(` (or a turbofish)
//! inside fn `A` adds an edge `A → foo` for every workspace fn named `foo`
//! that `A`'s crate could actually depend on. The crate-dependency filter
//! (from the manifests' `[dependencies]` sections — dev-dependencies are
//! deliberately excluded, test-only edges cannot reach a shipped result
//! path) is what keeps name collisions from wiring unrelated crates
//! together: `crates/sim` calling `.run(…)` can never edge into the bench
//! CLI's `run`, because bench is not in sim's dependency closure.
//!
//! The graph over-approximates (method calls edge to every same-named fn,
//! trait calls edge to every impl) and that is the right direction for the
//! rules built on it: taint reachability may report a chain that the types
//! would rule out, and the escape protocol absorbs it with a recorded
//! justification; it will not *miss* a chain because a helper was called
//! through a trait object.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{Item, ItemKind, ParsedFile};
use crate::workspace::{dependency_names, package_name, workspace_dep_dirs, Workspace};

/// One fn in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into [`Workspace::files`] / [`Graph::parsed`].
    pub file: usize,
    /// Index into the owning [`ParsedFile::items`].
    pub item: usize,
    /// The fn name (with any `r#` prefix).
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn sits in test context (`#[test]` / `#[cfg(test)]`
    /// module / `tests` module).
    pub is_test: bool,
    /// The crate directory owning the file (`crates/sim`, `shims/rand`,
    /// `tools/popstab-lint`, or `.` for the facade).
    pub crate_dir: String,
}

/// The linked workspace: parsed files, fn nodes, and call edges.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Parallel to [`Workspace::files`].
    pub parsed: Vec<ParsedFile>,
    /// Every fn item in the workspace, in (file, item) order.
    pub fns: Vec<FnNode>,
    /// `callees[f]` — fn ids `f` may call (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// `callers[f]` — fn ids that may call `f`.
    pub callers: Vec<Vec<usize>>,
}

/// Tokens that look like calls but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "else", "move", "ref", "mut", "in",
    "as", "where", "break", "continue", "dyn", "unsafe", "fn", "use", "mod", "impl", "struct",
    "enum", "union", "trait", "pub", "crate", "self", "Self", "super", "true", "false", "Some",
    "None", "Ok", "Err",
];

impl Graph {
    /// Parses every file and links the symbol table.
    pub fn build(ws: &Workspace) -> Graph {
        let parsed: Vec<ParsedFile> = ws
            .files
            .iter()
            .map(|f| ParsedFile::parse(&f.lines))
            .collect();

        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, (file, pf)) in ws.files.iter().zip(&parsed).enumerate() {
            for (ii, item) in pf.items.iter().enumerate() {
                if item.kind != ItemKind::Fn {
                    continue;
                }
                fns.push(FnNode {
                    file: fi,
                    item: ii,
                    name: item.name.clone(),
                    path: file.path.clone(),
                    line: item.line,
                    is_test: item.is_test,
                    crate_dir: crate_dir(&file.path).to_string(),
                });
            }
        }
        for (id, node) in fns.iter().enumerate() {
            by_name.entry(node.name.as_str()).or_default().push(id);
        }

        let deps = dependency_closure(ws);
        let empty = BTreeSet::new();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (id, node) in fns.iter().enumerate() {
            let pf = &parsed[node.file];
            let span = pf.items[node.item].span.clone();
            let allowed = deps.get(node.crate_dir.as_str()).unwrap_or(&empty);
            let mut out = BTreeSet::new();
            for callee_name in call_sites(pf, span) {
                for &target in by_name.get(callee_name).map_or(&[][..], |v| v.as_slice()) {
                    let tcrate = &fns[target].crate_dir;
                    if *tcrate == node.crate_dir || allowed.contains(tcrate.as_str()) {
                        out.insert(target);
                    }
                }
            }
            for target in out {
                callees[id].push(target);
                callers[target].push(id);
            }
        }

        Graph {
            parsed,
            fns,
            callees,
            callers,
        }
    }

    /// The parsed item backing fn `id`.
    pub fn item(&self, id: usize) -> &Item {
        &self.parsed[self.fns[id].file].items[self.fns[id].item]
    }

    /// Whether fn `id`'s span (signature + body, nested items included)
    /// mentions `ident` as an exact token.
    pub fn mentions(&self, id: usize, ident: &str) -> bool {
        let node = &self.fns[id];
        self.parsed[node.file].span_mentions(self.item(id).span.clone(), ident)
    }

    /// Breadth-first search along `callees` (or `callers` when `reverse`)
    /// from `seeds`, skipping test fns. Returns a predecessor map:
    /// `pred[f] = Some(p)` when `f` was reached via `p` (seeds point at
    /// themselves), `None` when unreached.
    pub fn bfs(&self, seeds: &[usize], reverse: bool) -> Vec<Option<usize>> {
        let edges = if reverse {
            &self.callers
        } else {
            &self.callees
        };
        let mut pred: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if pred[s].is_none() && !self.fns[s].is_test {
                pred[s] = Some(s);
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for &next in &edges[f] {
                if pred[next].is_none() && !self.fns[next].is_test {
                    pred[next] = Some(f);
                    queue.push(next);
                }
            }
        }
        pred
    }

    /// The call chain `to ← … ← seed` implied by a [`Graph::bfs`]
    /// predecessor map, rendered seed-first as `a → b → c` fn names.
    pub fn chain(&self, pred: &[Option<usize>], to: usize) -> String {
        let mut names = Vec::new();
        let mut cur = to;
        loop {
            names.push(self.fns[cur].name.clone());
            match pred[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

/// The crate directory owning a workspace-relative source path.
pub fn crate_dir(path: &str) -> &str {
    for root in ["crates/", "shims/", "tools/"] {
        if let Some(rest) = path.strip_prefix(root) {
            if let Some(slash) = rest.find('/') {
                return &path[..root.len() + slash];
            }
        }
    }
    // src/, tests/, examples/ all belong to the facade crate.
    "."
}

/// Call-site callee names inside a token span: identifiers followed by `(`
/// or a `::<` turbofish, excluding definitions and keywords. Method calls
/// are included on purpose — a trait-object call must edge into every impl.
fn call_sites(pf: &ParsedFile, span: std::ops::Range<usize>) -> Vec<&str> {
    let toks = &pf.tokens[span];
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident() || NON_CALL_KEYWORDS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| toks[j].text.as_str());
        if matches!(prev, Some("fn" | "struct" | "enum" | "union" | "trait")) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let is_call = next == Some("(")
            || (next == Some("::") && toks.get(i + 2).map(|t| t.text.as_str()) == Some("<"));
        if is_call {
            out.push(toks[i].text.as_str());
        }
    }
    out
}

/// `crate_dir → transitive dependency crate_dirs`, from the manifests'
/// `[dependencies]` sections resolved through `[workspace.dependencies]`.
fn dependency_closure(ws: &Workspace) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let Some(root) = ws.root_manifest() else {
        return direct;
    };
    let name_to_dir: BTreeMap<String, String> =
        workspace_dep_dirs(&root.text).into_iter().collect();
    // Package names also resolve (a member could skip the workspace table).
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    for m in &ws.manifests {
        if let Some(pkg) = package_name(&m.text) {
            pkg_to_dir.insert(pkg, manifest_dir(&m.path));
        }
    }
    for m in &ws.manifests {
        let dir = manifest_dir(&m.path);
        let entry = direct.entry(dir).or_default();
        for dep in dependency_names(&m.text) {
            if let Some(d) = name_to_dir.get(&dep).or_else(|| pkg_to_dir.get(&dep)) {
                entry.insert(d.clone());
            }
        }
    }
    // Transitive closure (the workspace is small; fixpoint is fine).
    loop {
        let mut grew = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let mut add = BTreeSet::new();
            for d in deps.iter() {
                if let Some(transitive) = snapshot.get(d) {
                    add.extend(transitive.iter().cloned());
                }
            }
            for a in add {
                grew |= deps.insert(a);
            }
        }
        if !grew {
            return direct;
        }
    }
}

fn manifest_dir(path: &str) -> String {
    match path.strip_suffix("/Cargo.toml") {
        Some(dir) => dir.to_string(),
        None => ".".to_string(), // the root "Cargo.toml"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::TextFile;

    const ROOT_MANIFEST: &str = "\
[workspace]
members = [\"crates/sim\", \"crates/core\", \"crates/bench\"]

[workspace.dependencies]
popstab-sim = { path = \"crates/sim\" }
popstab-core = { path = \"crates/core\" }
";

    fn manifest(path: &str, text: &str) -> TextFile {
        TextFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    fn ws() -> Workspace {
        Workspace {
            files: vec![
                SourceFile::new(
                    "crates/sim/src/lib.rs",
                    "pub fn shard_work() { helper() }\nfn helper() {}\n",
                ),
                SourceFile::new(
                    "crates/core/src/lib.rs",
                    "pub fn step() { shard_work(); }\nfn local() { step() }\n\
                     #[cfg(test)]\nmod tests {\n    fn check() { step() }\n}\n",
                ),
                SourceFile::new("crates/bench/src/main.rs", "fn main() { step(); }\n"),
            ],
            manifests: vec![
                manifest("Cargo.toml", ROOT_MANIFEST),
                manifest(
                    "crates/sim/Cargo.toml",
                    "[package]\nname = \"popstab-sim\"\n",
                ),
                manifest(
                    "crates/core/Cargo.toml",
                    "[package]\nname = \"popstab-core\"\n[dependencies]\npopstab-sim.workspace = true\n",
                ),
                manifest(
                    "crates/bench/Cargo.toml",
                    "[package]\nname = \"popstab-bench\"\n[dependencies]\npopstab-core.workspace = true\n",
                ),
            ],
            ..Workspace::default()
        }
    }

    fn id(g: &Graph, name: &str, path: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name && f.path == path)
            .unwrap_or_else(|| panic!("no fn {name} in {path}"))
    }

    #[test]
    fn edges_follow_names_within_the_dependency_closure() {
        let g = Graph::build(&ws());
        let step = id(&g, "step", "crates/core/src/lib.rs");
        let shard = id(&g, "shard_work", "crates/sim/src/lib.rs");
        assert!(g.callees[step].contains(&shard), "core → sim edge");
        assert!(g.callers[shard].contains(&step));
    }

    #[test]
    fn edges_never_point_outside_the_dependency_closure() {
        let g = Graph::build(&ws());
        // sim does not depend on core: helper() in sim can never edge into
        // a same-named fn there, and nothing in sim reaches bench's main.
        let shard = id(&g, "shard_work", "crates/sim/src/lib.rs");
        let main = id(&g, "main", "crates/bench/src/main.rs");
        assert!(g.callees[shard]
            .iter()
            .all(|&c| g.fns[c].crate_dir == "crates/sim"));
        // bench (transitively) depends on sim through core.
        let step = id(&g, "step", "crates/core/src/lib.rs");
        assert!(g.callees[main].contains(&step));
    }

    #[test]
    fn bfs_skips_test_fns_and_records_chains() {
        let g = Graph::build(&ws());
        let step = id(&g, "step", "crates/core/src/lib.rs");
        let helper = id(&g, "helper", "crates/sim/src/lib.rs");
        let check = id(&g, "check", "crates/core/src/lib.rs");
        let pred = g.bfs(&[step], false);
        assert!(pred[helper].is_some(), "step → shard_work → helper");
        assert!(pred[check].is_none(), "test fns are not traversed");
        assert_eq!(g.chain(&pred, helper), "step → shard_work → helper");
    }

    #[test]
    fn crate_dirs_classify_paths() {
        assert_eq!(crate_dir("crates/sim/src/batch.rs"), "crates/sim");
        assert_eq!(crate_dir("shims/rand/src/lib.rs"), "shims/rand");
        assert_eq!(
            crate_dir("tools/popstab-lint/src/main.rs"),
            "tools/popstab-lint"
        );
        assert_eq!(crate_dir("src/lib.rs"), ".");
        assert_eq!(crate_dir("tests/golden_fixtures.rs"), ".");
    }
}
