//! A minimal Rust surface lexer: splits a source file into per-line *code*
//! and *comment* channels.
//!
//! The rules in this crate are token-level, so the lexer's only job is to
//! make token scanning sound: string/char-literal contents must never look
//! like code (a `"HashMap"` literal is not a `HashMap` use) and comment text
//! must never look like code either — while staying available separately,
//! because two of the conventions the lint enforces (`// SAFETY:` and
//! `// lint:allow(...)`) live *in* comments.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings with any `#` count (`r"…"`,
//! `r###"…"###`, byte/raw-byte variants), char literals, and the
//! char-vs-lifetime ambiguity (`'a'` vs `'a`).

/// One source line, split into its code and comment channels.
///
/// `code` preserves column positions for code tokens (literal contents and
/// comments are blanked with spaces) so diagnostics can point at real
/// columns if they ever need to; `comment` is the concatenated comment text
/// that was removed from the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedLine {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// The comment text removed from the line (without `//` / `/*` markers).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ordinary code.
    Code,
    /// Inside `/* … */`, tracking nesting depth.
    Block(u32),
    /// Inside `"…"` (or `b"…"`).
    Str,
    /// Inside `r##"…"##` (or `br##"…"##`) with this many `#`s.
    RawStr(u32),
}

/// Lexes a whole file into per-line code/comment channels.
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw_line in source.split('\n') {
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        // Line comment: the rest of the line is comment text.
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        code.push_str(&" ".repeat(chars.len() - i));
                        i = chars.len();
                        continue;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        state = State::Block(1);
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = if let Some(hashes) = raw_string_hashes(&chars, i) {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        code.push('"');
                    }
                    '\'' => {
                        // Char literal or lifetime? A char literal closes
                        // within a few characters; a lifetime never has a
                        // closing quote adjacent to its identifier.
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push('\'');
                            code.push_str(&" ".repeat(end - i - 1));
                            code.push('\'');
                            i = end + 1;
                            continue;
                        }
                        code.push('\'');
                    }
                    _ => code.push(c),
                },
                State::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    code.push(' ');
                }
                State::Str => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        state = State::Code;
                        code.push('"');
                        code.push_str(&" ".repeat(hashes as usize));
                        i += 1 + hashes as usize;
                        continue;
                    }
                    code.push(' ');
                }
            }
            i += 1;
        }
        // A string literal may legally span lines; comments reset nothing.
        out.push(LexedLine { code, comment });
    }
    out
}

/// If the `"` at `chars[i]` opens a raw string (`r"`, `r#"`, `br##"`, …),
/// returns the number of `#`s; `None` for an ordinary string.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<u32> {
    // Walk back over `#`s to the `r` prefix.
    let mut j = i;
    let mut hashes = 0u32;
    while j > 0 && chars[j - 1] == '#' {
        j -= 1;
        hashes += 1;
    }
    if j == 0 {
        return None;
    }
    let r_at = j - 1;
    if chars[r_at] != 'r' {
        return None;
    }
    // `r` must start the prefix: allow a preceding `b`, but not a preceding
    // identifier character (`for_r#"` is not a raw string).
    let prefix_start = if r_at > 0 && chars[r_at - 1] == 'b' {
        r_at - 1
    } else {
        r_at
    };
    if prefix_start > 0 && is_ident_char(chars[prefix_start - 1]) {
        return None;
    }
    Some(hashes)
}

/// Whether the `"` at `chars[i]` closes a raw string with `hashes` `#`s.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    i + h < chars.len() && chars[i + 1..=i + h].iter().all(|&c| c == '#')
}

/// If the `'` at `chars[i]` opens a char literal, returns the index of the
/// closing `'`; `None` if it is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        // `'\…'`: escaped char, possibly multi-character (`'\x7f'`,
        // `'\u{1F600}'`); scan ahead for the closing quote.
        Some('\\') => (i + 3..chars.len().min(i + 12)).find(|&j| chars[j] == '\''),
        // `'x'`: a plain one-character literal.
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        // `'ident` with no adjacent closing quote: a lifetime.
        _ => None,
    }
}

/// Whether `c` can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `code` contains `token` with identifier boundaries on both sides
/// (so `HashMap` does not match `MyHashMapLike`). Tokens may contain `::`.
pub fn contains_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap());
        let after = code[at + token.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_move_to_the_comment_channel() {
        let lines = lex("let x = 1; // SAFETY: fine\nlet y = 2;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment, " SAFETY: fine");
        assert_eq!(lines[1].code, "let y = 2;");
        assert_eq!(lines[1].comment, "");
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_remain() {
        let lines = lex(r#"let s = "HashMap // not a comment";"#);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[0].code.contains("//"));
        assert_eq!(lines[0].comment, "");
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn escaped_quote_does_not_close_a_string() {
        let lines = lex(r#"let s = "a\"b"; let t = HashMap;"#);
        assert!(contains_token(&lines[0].code, "HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes_span_lines() {
        let src = "let s = r#\"line one HashMap\nline two \" quote\"#; let m = HashMap;";
        let lines = codes(src);
        assert!(!lines[0].contains("HashMap"));
        assert!(contains_token(&lines[1], "HashMap"));
    }

    #[test]
    fn raw_string_prefix_requires_a_boundary() {
        // `bar"…"` is a call-adjacent string, not a raw string: the `r` is
        // part of the identifier, so the plain-string rules apply.
        let lines = codes("foobar\"x\" + HashMap");
        assert!(contains_token(&lines[0], "HashMap"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "a /* one /* two */ still comment */ b\nc";
        let lines = lex(src);
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(lines[0].comment.contains("still comment"));
        assert_eq!(lines[1].code, "c");
    }

    #[test]
    fn block_comment_spanning_lines_keeps_commenting() {
        let src = "code(); /* SAFETY: spans\nstill comment */ more();";
        let lines = lex(src);
        assert!(lines[0].comment.contains("SAFETY"));
        assert!(!lines[1].code.contains("still"));
        assert!(lines[1].code.contains("more();"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let lines = codes("let c = 'a'; fn f<'a>(x: &'a str) { g('\\n') }");
        // Lifetimes survive as code; char contents are blanked.
        assert!(lines[0].contains("<'a>"));
        assert!(lines[0].contains("&'a str"));
        assert!(!lines[0].contains("\\n"));
    }

    #[test]
    fn token_boundaries_respect_identifiers() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("struct MyHashMapLike;", "HashMap"));
        assert!(!contains_token("let hashmap = 1;", "HashMap"));
        assert!(contains_token("std::env::var(\"X\")", "std::env"));
        assert!(!contains_token("mystd::envy", "std::env"));
    }
}
