//! `popstab-lint` — determinism-contract static analysis for this
//! workspace.
//!
//! The engine's most valuable invariant — every trajectory is a pure
//! function of `(seed, RunSpec)`, bit-identical from serial to sharded
//! execution — is enforced dynamically by golden fixtures and property
//! tests. Those catch a violation only *after* it has perturbed a stream.
//! This crate is the static half of the contract: a source-level pass that
//! proves, before anything runs, that no nondeterminism source can reach a
//! result path.
//!
//! Since PR 10 the pass is item-aware: [`syntax`] parses each file's code
//! channel into tokens and items (fns, impls, `use`/`type` aliases) and
//! [`graph`] links them into a workspace-wide approximate call graph,
//! filtered by the crate dependency closure from the manifests. Rules that
//! need reachability (nondeterminism taint, `SendPtr` range coverage) walk
//! that graph; line-shaped rules still scan the lexed channels directly.
//!
//! Run it as `cargo run -p popstab-lint` from anywhere in the workspace
//! (CI runs it between clippy and the test suite). Exit code 0 means the
//! tree is clean; 1 means violations were reported. `--format json` emits
//! a machine-readable report (schema asserted in CI), `--format github`
//! emits workflow error annotations, and `--rules-md` prints the rule
//! table below straight from the registry.
//!
//! # Rules
//!
//! | rule | guards against |
//! |------|----------------|
//! | `taint-ambient-nondeterminism` | clock / env / OS-RNG / hash-order reads reachable from result-affecting fns, traced through the call graph and `use`/`type` aliases |
//! | `forbid-unordered-iteration` | `HashMap`/`HashSet` (per-process `RandomState` iteration order) anywhere in a result-affecting crate |
//! | `float-order-determinism` | order-sensitive `f64` reductions (`sum`, `fold`) outside the order-fixed `ordered_sum` helper in result/statistics crates |
//! | `sendptr-bounds` | `SendPtr`/`ColPtr` crossing a pool dispatch or deref'd in a helper without `shard_range`-derived disjoint indices |
//! | `unsafe-needs-safety-comment` | `unsafe` blocks, fns, or impls without an adjacent `// SAFETY:` soundness argument |
//! | `simd-scalar-twin` | lane-batched `_x8` kernels without a same-file scalar twin and lane-for-lane equivalence test |
//! | `stream-version-coherence` | partial stream bumps — version constants, golden-fixture tables, and `BENCH_engine.json` disagreeing |
//! | `workspace-manifest-invariants` | workspace crates missing the per-package dev/test `opt-level` overrides that keep `cargo test` fast |
//! | `unused-allow` | `lint:allow` escapes that no longer suppress any finding (stale exceptions rot into holes) |
//!
//! (This table is generated — `cargo run -p popstab-lint -- --rules-md` —
//! and a docs-drift test asserts the facade copy matches it.)
//!
//! # Escapes
//!
//! A finding that is provably harmless is silenced in place, with the proof:
//!
//! ```text
//! // lint:allow(<rule>): <one-line justification>        — next code line
//! some_call(); // lint:allow(<rule>): <justification>    — same line
//! // lint:allow-file(<rule>): <justification>            — whole file, first 20 lines
//! ```
//!
//! The justification must be at least 15 characters — long enough to state
//! *why*, not just *that*. An escape without one (or naming an unknown
//! rule, or an `allow-file` outside the leading window) is itself a
//! diagnostic, and an escape that no longer suppresses anything is an
//! `unused-allow` finding: allows must stay auditable and earned.

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod source;
pub mod syntax;
pub mod workspace;

use diag::Diagnostic;
use rules::Context;
use workspace::Workspace;

/// Runs every rule over the workspace and returns the findings that no
/// valid escape covers — plus a finding per escape that covered nothing
/// (`unused-allow`) — sorted by file, line, and rule.
pub fn run_lint(ws: &Workspace) -> Vec<Diagnostic> {
    let rules = rules::all();
    let known: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    let cx = Context::new(ws);

    let mut out = Vec::new();
    // Escapes already reported as malformed/misplaced must not *also* be
    // reported as unused; track which allow lines carry a syntax finding.
    let mut reported_allows: Vec<(String, usize)> = Vec::new();
    for file in &ws.files {
        for d in file.allow_diagnostics(&known) {
            reported_allows.push((d.file.clone(), d.line));
            out.push(d);
        }
    }

    // Which allows suppressed at least one finding: (file index, allow index).
    let mut used: Vec<(usize, usize)> = Vec::new();
    for rule in &rules {
        for d in rule.check(&cx) {
            let covering = (d.line > 0)
                .then(|| {
                    ws.files
                        .iter()
                        .position(|f| f.path == d.file)
                        .map(|fi| (fi, ws.files[fi].covering_allows(d.rule, d.line)))
                })
                .flatten()
                .filter(|(_, c)| !c.is_empty());
            match covering {
                Some((fi, covers)) => used.extend(covers.into_iter().map(|ai| (fi, ai))),
                None => out.push(d),
            }
        }
    }

    for (fi, file) in ws.files.iter().enumerate() {
        for (ai, allow) in file.allows.iter().enumerate() {
            if used.contains(&(fi, ai))
                || reported_allows.contains(&(file.path.clone(), allow.line))
            {
                continue;
            }
            out.push(Diagnostic::new(
                &file.path,
                allow.line,
                "unused-allow",
                format!(
                    "`lint:allow{}({})` suppresses nothing — the finding it silenced is gone; \
                     delete the escape (the rule will speak up if the hazard returns)",
                    if allow.file_wide { "-file" } else { "" },
                    allow.rule
                ),
            ));
        }
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use source::SourceFile;

    fn ws_with(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        }
    }

    #[test]
    fn a_valid_allow_suppresses_the_finding() {
        let src = "\
// lint:allow(forbid-unordered-iteration): membership-only set, never iterated.
use std::collections::HashSet;
";
        let diags = run_lint(&ws_with("crates/sim/src/x.rs", src));
        assert!(
            !diags.iter().any(|d| d.rule == "forbid-unordered-iteration"),
            "{diags:?}"
        );
        // And a used allow is not stale.
        assert!(!diags.iter().any(|d| d.rule == "unused-allow"), "{diags:?}");
    }

    #[test]
    fn an_unjustified_allow_is_a_finding_and_does_not_suppress() {
        let src = "use std::collections::HashSet; // lint:allow(forbid-unordered-iteration)\n";
        let diags = run_lint(&ws_with("crates/sim/src/x.rs", src));
        assert!(diags.iter().any(|d| d.rule == "lint-allow-syntax"));
        assert!(diags.iter().any(|d| d.rule == "forbid-unordered-iteration"));
        // Malformed escapes never parse into allows, so nothing to mark stale.
        assert!(!diags.iter().any(|d| d.rule == "unused-allow"));
    }

    #[test]
    fn an_allow_that_suppresses_nothing_is_stale() {
        let src = "\
// lint:allow(forbid-unordered-iteration): there used to be a set here.
use std::collections::BTreeSet;
";
        // Keep only the findings about the seeded file — the synthetic
        // workspace is missing the version/manifest artifacts, which the
        // coherence rules rightly report.
        let diags: Vec<_> = run_lint(&ws_with("crates/sim/src/x.rs", src))
            .into_iter()
            .filter(|d| d.file == "crates/sim/src/x.rs")
            .collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("forbid-unordered-iteration"));
    }

    #[test]
    fn an_allow_naming_an_unknown_rule_is_syntax_not_stale() {
        let src = "// lint:allow(no-such-rule): this rule was renamed away long ago.\nfn f() {}\n";
        let diags: Vec<_> = run_lint(&ws_with("crates/sim/src/x.rs", src))
            .into_iter()
            .filter(|d| d.file == "crates/sim/src/x.rs")
            .collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lint-allow-syntax");
    }
}
