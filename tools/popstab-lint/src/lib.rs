//! `popstab-lint` — determinism-contract static analysis for this
//! workspace.
//!
//! The engine's most valuable invariant — every trajectory is a pure
//! function of `(seed, RunSpec)`, bit-identical from serial to sharded
//! execution — is enforced dynamically by golden fixtures and property
//! tests. Those catch a violation only *after* it has perturbed a stream.
//! This crate is the static half of the contract: a source-level pass that
//! proves, before anything runs, that no nondeterminism source can reach a
//! result path.
//!
//! Run it as `cargo run -p popstab-lint` from anywhere in the workspace
//! (CI runs it between clippy and the test suite). Exit code 0 means the
//! tree is clean; 1 means violations were printed.
//!
//! # Rules
//!
//! | rule | guards against |
//! |------|----------------|
//! | `forbid-ambient-nondeterminism` | wall-clock / OS-RNG / env reads in result crates |
//! | `forbid-unordered-iteration` | `HashMap`/`HashSet` (RandomState order) in result crates |
//! | `unsafe-needs-safety-comment` | `unsafe` without an adjacent `// SAFETY:` argument |
//! | `stream-version-coherence` | partial stream bumps across constants, fixtures, benchmarks |
//! | `workspace-manifest-invariants` | crates missing dev/test `opt-level` overrides |
//! | `no-deprecated-internal-callers` | internal use of `#[deprecated]` wrappers |
//!
//! # Escapes
//!
//! A finding that is provably harmless is silenced in place, with the proof:
//!
//! ```text
//! // lint:allow(<rule>): <one-line justification>        — next code line
//! some_call(); // lint:allow(<rule>): <justification>    — same line
//! // lint:allow-file(<rule>): <justification>            — whole file, first 20 lines
//! ```
//!
//! An escape without a justification (or naming an unknown rule, or an
//! `allow-file` outside the leading window) is itself a diagnostic: allows
//! must stay auditable.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use diag::Diagnostic;
use workspace::Workspace;

/// Runs every rule over the workspace and returns the findings that no
/// valid escape covers, sorted by file, line, and rule.
pub fn run_lint(ws: &Workspace) -> Vec<Diagnostic> {
    let rules = rules::all();
    let known: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    let mut out = Vec::new();
    for file in &ws.files {
        out.extend(file.allow_diagnostics(&known));
    }
    for rule in &rules {
        for d in rule.check(ws) {
            let allowed = d.line > 0
                && ws
                    .file(&d.file)
                    .is_some_and(|f| f.is_allowed(d.rule, d.line));
            if !allowed {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use source::SourceFile;

    #[test]
    fn a_valid_allow_suppresses_the_finding() {
        let src = "\
// lint:allow(forbid-unordered-iteration): membership-only set, never iterated.
use std::collections::HashSet;
";
        let ws = Workspace {
            files: vec![SourceFile::new("crates/sim/src/x.rs", src)],
            ..Workspace::default()
        };
        let unordered: Vec<_> = run_lint(&ws)
            .into_iter()
            .filter(|d| d.rule == "forbid-unordered-iteration")
            .collect();
        assert!(unordered.is_empty(), "{unordered:?}");
    }

    #[test]
    fn an_unjustified_allow_is_a_finding_and_does_not_suppress() {
        let src = "use std::collections::HashSet; // lint:allow(forbid-unordered-iteration)\n";
        let ws = Workspace {
            files: vec![SourceFile::new("crates/sim/src/x.rs", src)],
            ..Workspace::default()
        };
        let diags = run_lint(&ws);
        assert!(diags.iter().any(|d| d.rule == "lint-allow-syntax"));
        assert!(diags.iter().any(|d| d.rule == "forbid-unordered-iteration"));
    }
}
