//! CLI entry point: lints the enclosing workspace and exits non-zero on
//! findings. See the crate docs (`cargo doc -p popstab-lint`) for the rule
//! catalogue and the `lint:allow` escape syntax.

use std::path::PathBuf;
use std::process::ExitCode;

use popstab_lint::workspace::Workspace;
use popstab_lint::{rules, run_lint};

fn main() -> ExitCode {
    let Some(root) = find_workspace_root() else {
        eprintln!("popstab-lint: no workspace Cargo.toml found above the current directory");
        return ExitCode::FAILURE;
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "popstab-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let diags = run_lint(&ws);
    if diags.is_empty() {
        let rule_count = rules::all().len();
        println!(
            "popstab-lint: clean — {} files, {rule_count} rules, 0 findings",
            ws.files.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("popstab-lint: {} finding(s)", diags.len());
    ExitCode::FAILURE
}

/// Walks up from the current directory to the manifest declaring
/// `[workspace]`, falling back to this crate's own workspace at compile
/// time (so `cargo run -p popstab-lint` works from any subdirectory).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            break;
        }
    }
    // tools/popstab-lint/../.. is the workspace root.
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    compiled.parent()?.parent().map(PathBuf::from)
}
