//! CLI entry point: lints the enclosing workspace and exits non-zero on
//! findings. See the crate docs (`cargo doc -p popstab-lint`) for the rule
//! catalogue and the `lint:allow` escape syntax.
//!
//! ```text
//! popstab-lint [--format text|json|github] [--rules-md]
//! ```
//!
//! `--rules-md` prints the rule table as markdown (the source of truth for
//! the facade docs) and exits 0 without scanning anything.

use std::path::PathBuf;
use std::process::ExitCode;

use popstab_lint::output::{render, Format};
use popstab_lint::workspace::Workspace;
use popstab_lint::{rules, run_lint};

fn main() -> ExitCode {
    let format = match parse_args() {
        Ok(Some(format)) => format,
        Ok(None) => {
            print!("{}", rules::rules_markdown());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("popstab-lint: {e}");
            eprintln!("usage: popstab-lint [--format text|json|github] [--rules-md]");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = find_workspace_root() else {
        eprintln!("popstab-lint: no workspace Cargo.toml found above the current directory");
        return ExitCode::FAILURE;
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "popstab-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let diags = run_lint(&ws);
    let rule_names: Vec<&'static str> = rules::all().iter().map(|r| r.name()).collect();
    print!("{}", render(format, &diags, ws.files.len(), &rule_names));
    if diags.is_empty() {
        if format == Format::Text {
            println!(
                "popstab-lint: clean — {} files, {} rules, 0 findings",
                ws.files.len(),
                rule_names.len()
            );
        }
        return ExitCode::SUCCESS;
    }
    if format == Format::Text {
        println!("popstab-lint: {} finding(s)", diags.len());
    }
    ExitCode::FAILURE
}

/// Parses the CLI: `Ok(Some(format))` to lint, `Ok(None)` for `--rules-md`.
fn parse_args() -> Result<Option<Format>, String> {
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules-md" => return Ok(None),
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                format = Format::parse(&value)
                    .ok_or_else(|| format!("unknown format `{value}` (text|json|github)"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(format))
}

/// Walks up from the current directory to the manifest declaring
/// `[workspace]`, falling back to this crate's own workspace at compile
/// time (so `cargo run -p popstab-lint` works from any subdirectory).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            break;
        }
    }
    // tools/popstab-lint/../.. is the workspace root.
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    compiled.parent()?.parent().map(PathBuf::from)
}
