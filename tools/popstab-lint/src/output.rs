//! Machine-readable output formats for CI.
//!
//! `--format text` (the default) prints one `file:line: [rule] message`
//! line per finding — the human-facing shape. `--format json` emits a
//! single JSON object with a versioned schema that CI asserts against
//! (the same pattern as `BENCH_engine.json`): a schema bump is a
//! deliberate, reviewed event, not a side effect of a refactor.
//! `--format github` emits GitHub Actions workflow commands, so findings
//! surface as inline annotations on the PR diff.
//!
//! The JSON is hand-serialized — this crate is deliberately
//! zero-dependency — which is safe because the value space is small:
//! paths, rule names, and messages, all run through one escaping routine.

use crate::diag::Diagnostic;

/// The version CI pins. Bump only with the CI assertion and changelog.
pub const SCHEMA_VERSION: u32 = 1;

/// Selected output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One `file:line: [rule] message` line per finding.
    Text,
    /// A single versioned JSON report object.
    Json,
    /// GitHub Actions `::error` workflow commands.
    Github,
}

impl Format {
    /// Parses a `--format` argument value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Renders the full report in `format`. `files_scanned` and `rules` are
/// part of the JSON schema so CI can assert the pass actually covered the
/// tree (a lint that silently scanned zero files also reports zero
/// findings).
pub fn render(
    format: Format,
    findings: &[Diagnostic],
    files_scanned: usize,
    rules: &[&'static str],
) -> String {
    match format {
        Format::Text => {
            let mut s = String::new();
            for d in findings {
                s.push_str(&d.to_string());
                s.push('\n');
            }
            s
        }
        Format::Json => render_json(findings, files_scanned, rules),
        Format::Github => {
            let mut s = String::new();
            for d in findings {
                // %0A is the workflow-command escape for a newline.
                let message = d.message.replace('%', "%25").replace('\n', "%0A");
                s.push_str(&format!(
                    "::error file={},line={},title=popstab-lint({})::{}\n",
                    d.file,
                    d.line.max(1),
                    d.rule,
                    message
                ));
            }
            s
        }
    }
}

fn render_json(findings: &[Diagnostic], files_scanned: usize, rules: &[&'static str]) -> String {
    let rule_list = rules
        .iter()
        .map(|r| json_string(r))
        .collect::<Vec<_>>()
        .join(", ");
    let mut s = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"files_scanned\": {files_scanned},\n  \
         \"rules\": [{rule_list}],\n  \"finding_count\": {},\n  \"findings\": [",
        findings.len()
    );
    for (i, d) in findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            json_string(d.rule),
            json_string(&d.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic::new(
            "crates/sim/src/x.rs",
            3,
            "taint-ambient-nondeterminism",
            "a \"quoted\" read\nsecond line".to_string(),
        )]
    }

    #[test]
    fn json_report_is_versioned_and_escaped() {
        let s = render(
            Format::Json,
            &sample(),
            42,
            &["taint-ambient-nondeterminism"],
        );
        assert!(s.contains("\"schema_version\": 1"), "{s}");
        assert!(s.contains("\"files_scanned\": 42"), "{s}");
        assert!(s.contains("\"finding_count\": 1"), "{s}");
        assert!(s.contains("a \\\"quoted\\\" read\\nsecond line"), "{s}");
    }

    #[test]
    fn empty_json_report_has_an_empty_findings_array() {
        let s = render(Format::Json, &[], 42, &["taint-ambient-nondeterminism"]);
        assert!(s.contains("\"finding_count\": 0"), "{s}");
        assert!(s.contains("\"findings\": []"), "{s}");
    }

    #[test]
    fn github_format_emits_error_commands() {
        let s = render(Format::Github, &sample(), 42, &[]);
        assert!(
            s.starts_with("::error file=crates/sim/src/x.rs,line=3,title=popstab-lint(taint-ambient-nondeterminism)::"),
            "{s}"
        );
        assert!(s.contains("%0A"), "newlines must be escaped: {s}");
    }

    #[test]
    fn whole_file_findings_are_pinned_to_line_one_for_github() {
        let d = vec![Diagnostic::new("Cargo.toml", 0, "r", "m".to_string())];
        let s = render(Format::Github, &d, 1, &[]);
        assert!(s.contains("line=1,"), "{s}");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("github"), Some(Format::Github));
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("yaml"), None);
    }
}
