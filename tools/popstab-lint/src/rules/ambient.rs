//! Rule `forbid-ambient-nondeterminism`: no wall-clock, OS-RNG, or process
//! environment reads inside result-affecting crates.
//!
//! The engine's determinism contract makes every trajectory a pure function
//! of `(seed, RunSpec)`. Any ambient read on a result path silently breaks
//! that — and unlike a stream bump, it breaks it *unreproducibly*, so the
//! golden fixtures may keep passing while cross-host runs diverge. This rule
//! bans the ambient sources at their call-site spelling; the escape is
//! `lint:allow(forbid-ambient-nondeterminism)` with a proof that the read
//! cannot reach a result (e.g. it only picks a worker count, and worker
//! counts are result-neutral by the sharding contract).

use crate::diag::Diagnostic;
use crate::lexer::contains_token;
use crate::rules::{Rule, RESULT_CRATES};
use crate::workspace::Workspace;

/// See the module docs.
pub struct ForbidAmbientNondeterminism;

/// Banned spellings and what each one reads.
const TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "the monotonic clock"),
    ("SystemTime", "the wall clock"),
    ("thread_rng", "the OS-seeded thread RNG"),
    ("std::env", "the process environment"),
    ("env::var", "the process environment"),
    ("env::args", "the process arguments"),
];

impl Rule for ForbidAmbientNondeterminism {
    fn name(&self) -> &'static str {
        "forbid-ambient-nondeterminism"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in ws.files_under(RESULT_CRATES) {
            for (idx, line) in file.lines.iter().enumerate() {
                if let Some((token, what)) = TOKENS
                    .iter()
                    .find(|(token, _)| contains_token(&line.code, token))
                {
                    out.push(Diagnostic::new(
                        &file.path,
                        idx + 1,
                        self.name(),
                        format!(
                            "`{token}` reads {what} inside a result-affecting crate; derive the \
                             value from the run's seed, or escape with \
                             `lint:allow(forbid-ambient-nondeterminism): <why it cannot reach a \
                             result>`"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws_with(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        }
    }

    #[test]
    fn accepts_seed_derived_randomness() {
        let ws = ws_with(
            "crates/sim/src/rng.rs",
            "fn fresh(seed: u64) -> SimRng { rng_from_seed(seed) }\n",
        );
        assert!(ForbidAmbientNondeterminism.check(&ws).is_empty());
    }

    #[test]
    fn rejects_clock_and_env_reads_in_result_crates() {
        let ws = ws_with(
            "crates/core/src/protocol.rs",
            "fn t() -> Instant { Instant::now() }\nfn e() { std::env::var(\"X\").ok(); }\n",
        );
        let diags = ForbidAmbientNondeterminism.check(&ws);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("monotonic clock"));
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn bench_and_cli_crates_are_out_of_scope() {
        let ws = ws_with(
            "crates/bench/src/experiments/bench.rs",
            "let start = Instant::now();\n",
        );
        assert!(ForbidAmbientNondeterminism.check(&ws).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_count() {
        let ws = ws_with(
            "crates/sim/src/batch.rs",
            "// Instant::now() would be wrong here.\nlet s = \"SystemTime\";\n",
        );
        assert!(ForbidAmbientNondeterminism.check(&ws).is_empty());
    }
}
