//! Rule `no-deprecated-internal-callers`: `#[deprecated]` items must have
//! zero callers inside the workspace.
//!
//! Deprecated wrappers exist for downstream migration, not for internal
//! convenience; an internal caller both hides behind the crate-local
//! `#[allow(deprecated)]` it forces and keeps the wrapper's removal PR
//! blocked forever. The rule finds every `#[deprecated]` `fn`, then flags
//! any use of its name outside the item's own definition span.

use crate::diag::Diagnostic;
use crate::lexer::{contains_token, is_ident_char};
use crate::rules::Rule;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// See the module docs.
pub struct NoDeprecatedInternalCallers;

/// A `#[deprecated]` function definition.
#[derive(Debug)]
struct DeprecatedFn {
    name: String,
    file: String,
    /// 1-based inclusive span covering the attribute through the body.
    span: (usize, usize),
}

impl Rule for NoDeprecatedInternalCallers {
    fn name(&self) -> &'static str {
        "no-deprecated-internal-callers"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let defs: Vec<DeprecatedFn> = ws.files.iter().flat_map(find_deprecated_fns).collect();
        let mut out = Vec::new();
        for file in &ws.files {
            for (idx, line) in file.lines.iter().enumerate() {
                let lineno = idx + 1;
                for def in &defs {
                    if def.file == file.path && lineno >= def.span.0 && lineno <= def.span.1 {
                        continue; // the definition itself
                    }
                    if is_call_site(&line.code, &def.name) {
                        out.push(Diagnostic::new(
                            &file.path,
                            lineno,
                            self.name(),
                            format!(
                                "call to deprecated `{}` (defined in {}); migrate to the \
                                 replacement named in its `#[deprecated]` note",
                                def.name, def.file
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Whether `code` uses `name` as a call (not its `fn` definition).
fn is_call_site(code: &str, name: &str) -> bool {
    if !contains_token(code, name) {
        return false;
    }
    // A definition line (`fn name`, possibly `pub fn name`) is not a call.
    !code.contains(&format!("fn {name}"))
}

/// Scans one file for `#[deprecated]` functions with their body spans.
fn find_deprecated_fns(file: &SourceFile) -> Vec<DeprecatedFn> {
    let mut out = Vec::new();
    let lines = &file.lines;
    for (idx, line) in lines.iter().enumerate() {
        if !line.code.contains("#[deprecated") {
            continue;
        }
        // Find the `fn` this attribute decorates (skipping the rest of the
        // attribute and any further attributes/comments).
        let Some((fn_line, name)) = (idx..lines.len().min(idx + 12))
            .find_map(|j| fn_name(&lines[j].code).map(|name| (j, name)))
        else {
            continue;
        };
        let end = body_end(lines, fn_line).unwrap_or(fn_line);
        out.push(DeprecatedFn {
            name,
            file: file.path.clone(),
            span: (idx + 1, end + 1),
        });
    }
    out
}

/// The identifier after `fn ` on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    let pos = code.find("fn ")?;
    // `fn` must be a word of its own (`pub fn`, line start, …).
    if pos > 0 && is_ident_char(code[..pos].chars().next_back().unwrap()) {
        return None;
    }
    let name: String = code[pos + 3..]
        .trim_start()
        .chars()
        .take_while(|&c| is_ident_char(c))
        .collect();
    (!name.is_empty()).then_some(name)
}

/// The 0-based line where the brace-delimited body opened at-or-after
/// `start` closes.
fn body_end(lines: &[crate::lexer::LexedLine], start: usize) -> Option<usize> {
    let mut depth: i64 = 0;
    let mut entered = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEF: &str = "\
impl Engine {
    #[deprecated(
        since = \"0.1.0\",
        note = \"use `Engine::run` instead\"
    )]
    pub fn run_legacy(&mut self) -> u64 {
        self.run_serial(RunSpec::rounds(1), &mut ()).executed
    }
}
";

    fn ws(files: Vec<(&str, String)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p, &s))
                .collect(),
            ..Workspace::default()
        }
    }

    #[test]
    fn the_definition_itself_is_not_a_caller() {
        let ws = ws(vec![("crates/sim/src/engine.rs", DEF.to_string())]);
        assert!(NoDeprecatedInternalCallers.check(&ws).is_empty());
    }

    #[test]
    fn an_internal_caller_is_flagged() {
        let caller = "fn t() { engine.run_legacy(); }\n".to_string();
        let ws = ws(vec![
            ("crates/sim/src/engine.rs", DEF.to_string()),
            ("tests/suite.rs", caller),
        ]);
        let diags = NoDeprecatedInternalCallers.check(&ws);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].file, "tests/suite.rs");
        assert!(diags[0].message.contains("run_legacy"));
    }

    #[test]
    fn doc_comment_mentions_do_not_count() {
        let docs = "//! Migration table:\n//! | `run_legacy()` | `run(RunSpec::rounds(1), …)` |\n"
            .to_string();
        let ws = ws(vec![
            ("crates/sim/src/engine.rs", DEF.to_string()),
            ("src/lib.rs", docs),
        ]);
        assert!(NoDeprecatedInternalCallers.check(&ws).is_empty());
    }
}
