//! Rule `float-order-determinism`: order-sensitive float reductions must
//! go through the order-fixed helper.
//!
//! Float addition is not associative: `a + (b + c) != (a + b) + c` in
//! general, so any `f64` `sum()`/`fold` whose iteration order can change
//! (a refactor from `Vec` to a chunked iterator, a future parallel
//! reduction) silently changes the paper's reported statistics without
//! failing a single engine golden. The contract is therefore: in
//! result-affecting crates *and* `crates/analysis` (which computes the
//! reported figures), non-associative float reductions route through
//! `popstab_analysis::stats::ordered_sum` — a documented fixed left fold —
//! or carry a justified escape.
//!
//! Detection is token-level per fn: `sum::<f64>()` turbofish, bare
//! `.sum()` whose statement shows float evidence (an `f64`/`f32` token or
//! a float literal) and no integer annotation, and `.fold(…)` with a
//! float-typed accumulator. `fold(_, f64::max)` / `f64::min` are exempt —
//! min/max are associative and commutative, order cannot move them.
//! `ordered_*` helper definitions and test code are exempt.
//!
//! Escape: `lint:allow(float-order-determinism): <why the order is fixed>`.

use crate::diag::Diagnostic;
use crate::rules::taint::result_scope;
use crate::rules::{Context, Rule};
use crate::syntax::Token;

/// See the module docs.
pub struct FloatOrderDeterminism;

/// Crates in scope: the result crates plus the statistics crate.
fn float_scope(path: &str) -> bool {
    result_scope(path)
        || (path.starts_with("crates/analysis/")
            && !path.contains("/tests/")
            && !path.contains("/benches/"))
}

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];
const FLOAT_TYPES: &[&str] = &["f32", "f64"];

fn is_numeric(t: &Token) -> bool {
    t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Whether the token window contains float evidence: an `f32`/`f64` token,
/// a `<digits> . <digits>` literal, or a float-suffixed literal (`0f64`).
fn has_float(toks: &[Token]) -> bool {
    toks.iter().enumerate().any(|(i, t)| {
        FLOAT_TYPES.contains(&t.text.as_str())
            || (is_numeric(t)
                && toks.get(i + 1).is_some_and(|n| n.text == ".")
                && toks.get(i + 2).is_some_and(is_numeric))
            || (is_numeric(t) && (t.text.ends_with("f32") || t.text.ends_with("f64")))
    })
}

fn has_int_type(toks: &[Token]) -> bool {
    toks.iter().any(|t| INT_TYPES.contains(&t.text.as_str()))
}

impl Rule for FloatOrderDeterminism {
    fn name(&self) -> &'static str {
        "float-order-determinism"
    }

    fn summary(&self) -> &'static str {
        "order-sensitive `f64` reductions (`sum`, `fold`) outside the order-fixed \
         `ordered_sum` helper in result/statistics crates"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let g = &cx.graph;
        let mut out = Vec::new();
        for (f, node) in g.fns.iter().enumerate() {
            if node.is_test || !float_scope(&node.path) || node.name.starts_with("ordered_") {
                continue;
            }
            let pf = &g.parsed[node.file];
            let span = g.item(f).span.clone();
            let toks = &pf.tokens[span.clone()];
            for i in 0..toks.len() {
                let t = toks[i].text.as_str();
                let next = toks.get(i + 1).map(|t| t.text.as_str());
                let flagged = match (t, next) {
                    // `sum::<f64>()`
                    ("sum", Some("::")) if toks.get(i + 2).is_some_and(|t| t.text == "<") => {
                        let close = (i + 2..toks.len())
                            .find(|&j| toks[j].text == ">")
                            .unwrap_or(toks.len());
                        has_float(&toks[i + 2..close])
                    }
                    // Bare `.sum()`: look back across the statement for a
                    // float accumulator with no integer annotation.
                    ("sum", Some("(")) => {
                        let start = (0..i)
                            .rev()
                            .find(|&j| matches!(toks[j].text.as_str(), ";" | "{" | "}"))
                            .map_or(0, |j| j + 1);
                        let stmt = &toks[start..i];
                        has_float(stmt) && !has_int_type(stmt)
                    }
                    // `.fold(init, op)`: float-typed accumulator, unless the
                    // op is associative-commutative min/max.
                    ("fold", Some("(")) => {
                        let close = close_paren(toks, i + 1);
                        let args = &toks[i + 2..close];
                        let minmax = args.iter().any(|t| t.text == "max" || t.text == "min");
                        !minmax && has_float(args)
                    }
                    _ => false,
                };
                if flagged {
                    out.push(Diagnostic::new(
                        &node.path,
                        toks[i].line,
                        self.name(),
                        format!(
                            "order-sensitive float reduction in `{}`; float addition is not \
                             associative, so reduce through \
                             `popstab_analysis::stats::ordered_sum` (fixed left fold), or \
                             escape with `lint:allow(float-order-determinism): <why the \
                             iteration order is fixed>`",
                            node.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Index of the `)` matching the `(` at `open` (clamped to the span end).
fn close_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        };
        let cx = Context::new(&ws);
        FloatOrderDeterminism.check(&cx)
    }

    #[test]
    fn float_turbofish_sum_is_flagged() {
        let d = diags(
            "crates/analysis/src/stats.rs",
            "fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not associative"));
    }

    #[test]
    fn bare_sum_with_float_statement_is_flagged() {
        let d = diags(
            "crates/sim/src/metrics.rs",
            "fn total(xs: &[f64]) -> f64 {\n    let t: f64 = xs.iter().sum();\n    t\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn integer_sums_are_exempt() {
        let src = "fn total(xs: &[usize]) -> usize {\n    let t: usize = xs.iter().sum();\n    t + xs.iter().sum::<usize>()\n}\n";
        assert!(diags("crates/sim/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn float_fold_is_flagged_but_minmax_fold_is_exempt() {
        let flagged = diags(
            "crates/analysis/src/drift.rs",
            "fn acc(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, x| a + x) }\n",
        );
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        let exempt = diags(
            "crates/analysis/src/drift.rs",
            "fn peak(xs: &[f64]) -> f64 { xs.iter().copied().fold(0f64, f64::max) }\n",
        );
        assert!(exempt.is_empty(), "{exempt:?}");
    }

    #[test]
    fn ordered_helpers_and_tests_are_exempt() {
        let src = "fn ordered_sum(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
            #[cfg(test)]\nmod tests {\n    fn t(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n}\n";
        assert!(diags("crates/analysis/src/stats.rs", src).is_empty());
    }

    #[test]
    fn bench_and_integration_tests_are_out_of_scope() {
        let src = "fn t(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(diags("crates/bench/src/report.rs", src).is_empty());
        assert!(diags("crates/analysis/tests/proptests.rs", src).is_empty());
    }
}
