//! Rule `workspace-manifest-invariants`: every workspace crate must appear
//! in the root manifest's per-package `opt-level` overrides.
//!
//! The engine's hot loops are generic and monomorphize into the *caller* —
//! test binaries included — so a crate missing from the dev/test override
//! tables silently runs its simulation loops at `opt-level = 0` under
//! `cargo test`, turning the tier-1 suite from ~1 minute into many. The
//! ROADMAP calls this out as the invariant that must survive new crates;
//! this rule makes "I added a crate" fail the build until the overrides
//! follow.

use crate::diag::Diagnostic;
use crate::rules::{Context, Rule};
use crate::workspace::{manifest_members, package_name, section_has_key};

/// See the module docs.
pub struct WorkspaceManifestInvariants;

impl Rule for WorkspaceManifestInvariants {
    fn name(&self) -> &'static str {
        "workspace-manifest-invariants"
    }

    fn summary(&self) -> &'static str {
        "workspace crates missing the per-package dev/test `opt-level` overrides that keep \
         `cargo test` fast"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let ws = cx.ws;
        let mut out = Vec::new();
        let Some(root) = ws.root_manifest() else {
            return vec![Diagnostic::new(
                "Cargo.toml",
                0,
                self.name(),
                "workspace root manifest not found".to_string(),
            )];
        };

        // Every member's package name, plus the root package itself.
        let mut crate_names = Vec::new();
        if let Some(name) = package_name(&root.text) {
            crate_names.push(name);
        }
        for member in manifest_members(&root.text) {
            let manifest_path = format!("{member}/Cargo.toml");
            match ws
                .manifests
                .iter()
                .find(|m| m.path == manifest_path)
                .and_then(|m| package_name(&m.text))
            {
                Some(name) => crate_names.push(name),
                None => out.push(Diagnostic::new(
                    &root.path,
                    0,
                    self.name(),
                    format!("workspace member `{member}` has no readable package name"),
                )),
            }
        }

        for name in &crate_names {
            for profile in ["dev", "test"] {
                let section = format!("profile.{profile}.package.{name}");
                if !section_has_key(&root.text, &section, "opt-level") {
                    out.push(Diagnostic::new(
                        &root.path,
                        0,
                        self.name(),
                        format!(
                            "crate `{name}` is missing an `opt-level` override in \
                             `[{section}]`; hot loops monomorphize into callers, so every \
                             workspace crate must state its dev/test opt-level explicitly"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{TextFile, Workspace};

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        WorkspaceManifestInvariants.check(&Context::new(w))
    }

    fn ws(root: &str, members: &[(&str, &str)]) -> Workspace {
        let mut manifests = vec![TextFile {
            path: "Cargo.toml".into(),
            text: root.into(),
        }];
        for (dir, name) in members {
            manifests.push(TextFile {
                path: format!("{dir}/Cargo.toml"),
                text: format!("[package]\nname = \"{name}\"\n"),
            });
        }
        Workspace {
            manifests,
            ..Workspace::default()
        }
    }

    const COVERED: &str = r#"
[workspace]
members = ["crates/sim"]

[package]
name = "facade"

[profile.dev.package.facade]
opt-level = 3
[profile.test.package.facade]
opt-level = 3
[profile.dev.package.popstab-sim]
opt-level = 3
[profile.test.package.popstab-sim]
opt-level = 3
"#;

    #[test]
    fn accepts_fully_covered_overrides() {
        let ws = ws(COVERED, &[("crates/sim", "popstab-sim")]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn rejects_a_member_without_overrides() {
        let root = r#"
[workspace]
members = ["crates/sim", "crates/new"]

[profile.dev.package.popstab-sim]
opt-level = 3
[profile.test.package.popstab-sim]
opt-level = 3
"#;
        let ws = ws(
            root,
            &[("crates/sim", "popstab-sim"), ("crates/new", "popstab-new")],
        );
        let diags = run(&ws);
        assert_eq!(diags.len(), 2); // dev + test for popstab-new
        assert!(diags.iter().all(|d| d.message.contains("popstab-new")));
    }

    #[test]
    fn a_member_manifest_missing_from_the_tree_is_reported() {
        let root = "[workspace]\nmembers = [\"crates/ghost\"]\n";
        let ws = ws(root, &[]);
        let diags = run(&ws);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("ghost"));
    }
}
