//! The rule registry.
//!
//! Each rule scans the [`Workspace`] and emits candidate [`Diagnostic`]s;
//! the engine ([`crate::run_lint`]) then filters out findings covered by a
//! valid `lint:allow` escape. Rules are deliberately token-level: they trade
//! type-resolution precision for having zero dependencies and running in
//! milliseconds, and the escape protocol absorbs the (rare, auditable)
//! false positives.

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

pub mod ambient;
pub mod manifest;
pub mod safety;
pub mod simd;
pub mod stream_version;
pub mod unordered;

/// The crates whose code can reach a simulation result. `crates/bench` is
/// deliberately absent: wall-clock timing and CLI argument reads are its
/// job, and nothing it computes feeds back into a trajectory.
pub const RESULT_CRATES: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/adversary/",
    "crates/baselines/",
    "crates/extensions/",
];

/// One static-analysis rule.
pub trait Rule {
    /// The rule's kebab-case name, as referenced by `lint:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// Scans the workspace and returns candidate findings (before escape
    /// filtering).
    fn check(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// Every rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ambient::ForbidAmbientNondeterminism),
        Box::new(unordered::ForbidUnorderedIteration),
        Box::new(safety::UnsafeNeedsSafetyComment),
        Box::new(simd::SimdScalarTwin),
        Box::new(stream_version::StreamVersionCoherence),
        Box::new(manifest::WorkspaceManifestInvariants),
    ]
}
