//! The rule registry.
//!
//! Each rule scans a [`Context`] — the loaded [`Workspace`] plus the parsed
//! item [`Graph`] built once per run — and emits candidate [`Diagnostic`]s;
//! the engine ([`crate::run_lint`]) then filters out findings covered by a
//! valid `lint:allow` escape and reports escapes that covered nothing
//! (`unused-allow`). Rules trade type-resolution precision for having zero
//! dependencies and running in milliseconds; the escape protocol absorbs
//! the (rare, auditable) false positives.

use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::workspace::Workspace;

pub mod float_order;
pub mod manifest;
pub mod safety;
pub mod sendptr;
pub mod simd;
pub mod stream_version;
pub mod taint;
pub mod unordered;
pub mod unused_allow;

/// The crates whose code can reach a simulation result. `crates/bench` is
/// deliberately absent: wall-clock timing and CLI argument reads are its
/// job, and nothing it computes feeds back into a trajectory.
/// `crates/analysis` is absent too — it post-processes trajectories — but
/// it computes the paper's reported statistics, so the float-order rule
/// adds it back into its own scope.
pub const RESULT_CRATES: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/adversary/",
    "crates/baselines/",
    "crates/extensions/",
];

/// Everything a rule may look at, built once per run.
pub struct Context<'a> {
    /// The loaded workspace (lexed sources, manifests, artifacts).
    pub ws: &'a Workspace,
    /// The parsed item graph over `ws.files`.
    pub graph: Graph,
}

impl<'a> Context<'a> {
    /// Parses and links the workspace.
    pub fn new(ws: &'a Workspace) -> Context<'a> {
        Context {
            ws,
            graph: Graph::build(ws),
        }
    }
}

/// One static-analysis rule.
pub trait Rule {
    /// The rule's kebab-case name, as referenced by `lint:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description of what the rule guards against (markdown; this
    /// is the `--rules-md` table column the facade docs embed).
    fn summary(&self) -> &'static str;
    /// Scans the workspace and returns candidate findings (before escape
    /// filtering).
    fn check(&self, cx: &Context) -> Vec<Diagnostic>;
}

/// Every rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(taint::TaintAmbientNondeterminism),
        Box::new(unordered::ForbidUnorderedIteration),
        Box::new(float_order::FloatOrderDeterminism),
        Box::new(sendptr::SendPtrBounds),
        Box::new(safety::UnsafeNeedsSafetyComment),
        Box::new(simd::SimdScalarTwin),
        Box::new(stream_version::StreamVersionCoherence),
        Box::new(manifest::WorkspaceManifestInvariants),
        Box::new(unused_allow::UnusedAllow),
    ]
}

/// The `--rules-md` table: the rule catalogue as a markdown table, emitted
/// from the registry so the committed docs can be asserted against it.
pub fn rules_markdown() -> String {
    let mut s = String::from("| rule | guards against |\n|------|----------------|\n");
    for rule in all() {
        s.push_str(&format!("| `{}` | {} |\n", rule.name(), rule.summary()));
    }
    s
}
