//! Rule `unsafe-needs-safety-comment`: every `unsafe` block, impl, or
//! function must carry an adjacent `// SAFETY:` comment.
//!
//! The workspace's `unsafe` lives in the sharded round path, where the
//! soundness arguments are disjointness claims ("slot `i` belongs to exactly
//! one shard range") that a reviewer cannot reconstruct from the line
//! itself. The rule accepts a `SAFETY` comment on the same line or in the
//! comment run directly above; the walk also crosses attribute lines and
//! statement-continuation heads (`let x =` on the line above the `unsafe`
//! block), so the comment can sit where rustfmt puts the code. It is
//! deliberately per-item: two adjacent `unsafe` blocks (or a `Send`+`Sync`
//! impl pair) each need their own comment, because "the comment above the
//! group" is exactly what stops holding when one member is edited.

use crate::diag::Diagnostic;
use crate::lexer::contains_token;
use crate::rules::{Context, Rule};
use crate::source::SourceFile;

/// See the module docs.
pub struct UnsafeNeedsSafetyComment;

/// How far above an `unsafe` token the walk will look.
const LOOKBACK: usize = 12;

impl Rule for UnsafeNeedsSafetyComment {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn summary(&self) -> &'static str {
        "`unsafe` blocks, fns, or impls without an adjacent `// SAFETY:` soundness argument"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.ws.files {
            for (idx, line) in file.lines.iter().enumerate() {
                if !contains_token(&line.code, "unsafe") {
                    continue;
                }
                if !has_safety_comment(file, idx) {
                    out.push(Diagnostic::new(
                        &file.path,
                        idx + 1,
                        self.name(),
                        "`unsafe` without an adjacent `// SAFETY:` comment stating why this is \
                         sound"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}

/// Whether the `unsafe` token on 0-based line `idx` is covered by a
/// `SAFETY` comment: same line, or reachable by walking up through the
/// adjacent comment/attribute/`unsafe`/continuation lines.
fn has_safety_comment(file: &SourceFile, idx: usize) -> bool {
    if file.lines[idx].comment.contains("SAFETY") {
        return true;
    }
    let mut walked = 0;
    let mut i = idx;
    while i > 0 && walked < LOOKBACK {
        i -= 1;
        walked += 1;
        let line = &file.lines[i];
        if line.comment.contains("SAFETY") {
            return true;
        }
        let code = line.code.trim();
        let continues_statement = code
            .chars()
            .next_back()
            .is_some_and(|c| matches!(c, '=' | '(' | ',' | '|' | '+' | '&' | '.'));
        let crossable = code.is_empty()                      // comment or blank
            || code.starts_with("#[") || code.starts_with("#![") // attribute
            || continues_statement;
        if !crossable {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![SourceFile::new("crates/sim/src/batch.rs", src)],
            ..Workspace::default()
        };
        let cx = Context::new(&ws);
        UnsafeNeedsSafetyComment.check(&cx)
    }

    #[test]
    fn accepts_per_item_safety_comments() {
        let src = "\
// SAFETY: slot i belongs to exactly one shard range.
unsafe { base.add(i).write(v) };

// SAFETY: the pointer value is freely copyable across threads.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: same argument as Send above.
unsafe impl<T> Sync for SendPtr<T> {}

let erased: &'static (dyn Fn(usize) + Sync) =
    // SAFETY: workers drop the reference before dispatch returns.
    unsafe { std::mem::transmute(body) };
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn an_impl_pair_sharing_one_comment_is_flagged_per_item() {
        let src = "\
// SAFETY: justifies only the first impl.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
";
        let diags = check(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn accepts_safety_comment_across_a_continuation_head() {
        let src = "\
// SAFETY: shards cover disjoint ranges.
let out =
    unsafe { &mut *base.add(s) };
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn rejects_bare_unsafe() {
        let src = "fn f() {\n    unsafe { do_it() };\n}\n";
        let diags = check(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("SAFETY"));
    }

    #[test]
    fn a_distant_safety_comment_does_not_leak_across_code() {
        let src = "\
// SAFETY: this justifies only the first block.
unsafe { a() };
let x = compute();
unsafe { b() };
";
        let diags = check(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn the_word_unsafe_in_comments_or_strings_is_ignored() {
        let src = "// this code is unsafe in spirit\nlet s = \"unsafe\";\n";
        assert!(check(src).is_empty());
    }
}
