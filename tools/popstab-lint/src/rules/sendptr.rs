//! Rule `sendptr-bounds`: shared raw shard pointers must get their index
//! ranges from `shard_range`.
//!
//! The PR 3/4 sharding safety argument is always the same sentence: "slot
//! `i` belongs to exactly one shard range". That is only true when the
//! range actually came from `shard_range`/`word_shard_range` — the two
//! fns that partition `0..n` into disjoint contiguous pieces. Until now
//! the argument lived purely in SAFETY comments; this rule makes the
//! load-bearing half machine-checked, in two shapes:
//!
//! 1. **Dispatchers.** A fn that mentions a shared shard pointer
//!    (`SendPtr`/`ColPtr`) *and* fans work out over a pool
//!    (`dispatch`/`try_dispatch`) must call `shard_range` or
//!    `word_shard_range` in its span — the dispatch site is where
//!    disjointness is established, so deriving ranges any other way (or
//!    not at all) is a finding even if every deref happens to be in
//!    bounds today.
//! 2. **Deref helpers.** A fn that derefs a shard pointer (`unsafe` +
//!    pointer mention) without dispatching must be *reachable from* a fn
//!    that derives ranges — the columnar kernels receive their
//!    already-partitioned indices from `step_pooled`-style drivers, and
//!    the item graph verifies that such a driver actually exists. An
//!    orphaned deref helper nobody range-partitions for is a finding.
//!
//! Escape: `lint:allow(sendptr-bounds): <why the indices are disjoint>`.

use crate::diag::Diagnostic;
use crate::rules::taint::result_scope;
use crate::rules::{Context, Rule};

/// See the module docs.
pub struct SendPtrBounds;

/// The Send/Sync raw-pointer wrappers the engine shares across shards.
const PTR_TYPES: &[&str] = &["SendPtr", "ColPtr"];
/// Pool fan-out entry points.
const DISPATCHES: &[&str] = &["dispatch", "try_dispatch"];
/// The blessed range-partitioning fns.
const RANGES: &[&str] = &["shard_range", "word_shard_range"];

impl Rule for SendPtrBounds {
    fn name(&self) -> &'static str {
        "sendptr-bounds"
    }

    fn summary(&self) -> &'static str {
        "`SendPtr`/`ColPtr` crossing a pool dispatch or deref'd in a helper without \
         `shard_range`-derived disjoint indices"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let g = &cx.graph;
        // Fns that derive ranges themselves seed the "covered" set; any fn
        // they (transitively) call receives range-partitioned indices.
        let seeds: Vec<usize> = (0..g.fns.len())
            .filter(|&f| !g.fns[f].is_test && RANGES.iter().any(|r| g.mentions(f, r)))
            .collect();
        let covered = g.bfs(&seeds, false);

        let mut out = Vec::new();
        for (f, node) in g.fns.iter().enumerate() {
            if node.is_test || !result_scope(&node.path) {
                continue;
            }
            if !PTR_TYPES.iter().any(|p| g.mentions(f, p)) {
                continue;
            }
            let has_range = RANGES.iter().any(|r| g.mentions(f, r));
            if has_range {
                continue;
            }
            let dispatches = DISPATCHES.iter().any(|d| g.mentions(f, d));
            if dispatches {
                out.push(Diagnostic::new(
                    &node.path,
                    node.line,
                    self.name(),
                    format!(
                        "`{}` shares a raw shard pointer across a pool dispatch without \
                         deriving its index ranges from `shard_range`/`word_shard_range`; \
                         partition the slots there, or escape with `lint:allow(sendptr-bounds): \
                         <why the accesses are disjoint>`",
                        node.name
                    ),
                ));
            } else if g.mentions(f, "unsafe") && covered[f].is_none() {
                out.push(Diagnostic::new(
                    &node.path,
                    node.line,
                    self.name(),
                    format!(
                        "`{}` derefs a shared shard pointer but no caller chain derives its \
                         index range from `shard_range`/`word_shard_range`; route it through a \
                         range-partitioning driver, or escape with `lint:allow(sendptr-bounds): \
                         <why the accesses are disjoint>`",
                        node.name
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::{TextFile, Workspace};

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::new("crates/sim/src/engine.rs", src)],
            manifests: vec![TextFile {
                path: "Cargo.toml".to_string(),
                text: "[workspace]\nmembers = [\"crates/sim\"]\n".to_string(),
            }],
            ..Workspace::default()
        }
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        let ws = ws(src);
        let cx = Context::new(&ws);
        SendPtrBounds.check(&cx)
    }

    #[test]
    fn dispatch_with_shard_range_passes() {
        let src = "\
fn par_pass(pool: &ShardPool, buf: &mut [u64]) {
    let base = SendPtr(buf.as_mut_ptr());
    let n = buf.len();
    let nshards = pool.shards();
    pool.dispatch(&|s| {
        let (lo, hi) = shard_range(n, nshards, s);
        for i in lo..hi {
            unsafe { base.get().add(i).write(0) };
        }
    });
}
fn shard_range(n: usize, k: usize, s: usize) -> (usize, usize) { (0, n) }
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn dispatch_without_shard_range_is_flagged() {
        let src = "\
fn par_pass(pool: &ShardPool, buf: &mut [u64]) {
    let base = SendPtr(buf.as_mut_ptr());
    let per = buf.len() / pool.shards();
    pool.dispatch(&|s| {
        for i in s * per..(s + 1) * per {
            unsafe { base.get().add(i).write(0) };
        }
    });
}
";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("across a pool dispatch"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn deref_helper_reached_from_a_range_driver_passes() {
        let src = "\
fn driver(pool: &ShardPool, col: ColPtr<u64>, n: usize) {
    let nshards = pool.shards();
    pool.dispatch(&|s| {
        let (lo, hi) = word_shard_range(n, nshards, s);
        kernel(col, lo, hi);
    });
}
fn kernel(col: ColPtr<u64>, lo: usize, hi: usize) {
    for w in lo..hi {
        unsafe { *col.get().add(w) = 0 };
    }
}
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn orphaned_deref_helper_is_flagged() {
        let src = "\
fn kernel(col: ColPtr<u64>, lo: usize, hi: usize) {
    for w in lo..hi {
        unsafe { *col.get().add(w) = 0 };
    }
}
";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no caller chain"));
    }

    #[test]
    fn test_code_and_non_result_crates_are_out_of_scope() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(col: ColPtr<u64>) { unsafe { *col.get() = 0 }; }
}
";
        assert!(diags(src).is_empty());
    }
}
