//! Rule `simd-scalar-twin`: every lane-batched `_x8` kernel in a
//! result-affecting crate needs a same-file scalar reference function and
//! a test that exercises both.
//!
//! The determinism contract says batching can never move a draw: a
//! `foo_x8` kernel is only admissible as a bit-for-bit widening of some
//! scalar `foo`. That claim is meaningless without (a) the scalar twin
//! living next to the kernel, where a reviewer can diff the arithmetic,
//! and (b) a test in the same file that references both, pinning them
//! lane-for-lane (the `*_matches_scalar_twin` suites). The rule enforces
//! the shape token-wise: for each `fn <name>_x8` definition it requires a
//! `fn <name>` definition in the same file and mentions of both names at
//! or below the file's `mod tests` marker. A kernel whose twin genuinely
//! lives elsewhere can escape with
//! `lint:allow(simd-scalar-twin): <where the twin and test live>`.

use crate::diag::Diagnostic;
use crate::lexer::{contains_token, is_ident_char};
use crate::rules::{Context, Rule, RESULT_CRATES};
use crate::source::SourceFile;

/// See the module docs.
pub struct SimdScalarTwin;

/// Function names defined on `line` (there is at most one in idiomatic
/// code, but the lexer keeps whole lines, so scan them all).
fn defined_fns(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("fn ") {
        let boundary = pos == 0 || !is_ident_char(rest[..pos].chars().next_back().unwrap_or(' '));
        let after = &rest[pos + 3..];
        if boundary {
            let name: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        rest = after;
    }
    out
}

/// 0-based index of the line opening the file's test module, if any.
fn tests_start(file: &SourceFile) -> Option<usize> {
    file.lines.iter().position(|l| l.code.contains("mod tests"))
}

/// Whether `token` appears on any line at or after 0-based `from`.
fn mentioned_from(file: &SourceFile, from: usize, token: &str) -> bool {
    file.lines[from..]
        .iter()
        .any(|l| contains_token(&l.code, token))
}

impl Rule for SimdScalarTwin {
    fn name(&self) -> &'static str {
        "simd-scalar-twin"
    }

    fn summary(&self) -> &'static str {
        "lane-batched `_x8` kernels without a same-file scalar twin and lane-for-lane \
         equivalence test"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in cx.ws.files_under(RESULT_CRATES) {
            let all_fns: Vec<String> = file
                .lines
                .iter()
                .flat_map(|l| defined_fns(&l.code))
                .collect();
            let tests = tests_start(file);
            for (idx, line) in file.lines.iter().enumerate() {
                for kernel in defined_fns(&line.code) {
                    let Some(scalar) = kernel.strip_suffix("_x8") else {
                        continue;
                    };
                    if scalar.is_empty() {
                        continue;
                    }
                    if !all_fns.iter().any(|f| f == scalar) {
                        out.push(Diagnostic::new(
                            &file.path,
                            idx + 1,
                            self.name(),
                            format!(
                                "lane-batched kernel `{kernel}` has no scalar reference \
                                 `fn {scalar}` in this file; keep the twin next to the kernel \
                                 (or escape with `lint:allow(simd-scalar-twin): <where it \
                                 lives>`)"
                            ),
                        ));
                    }
                    let tested = tests.is_some_and(|t| {
                        mentioned_from(file, t, &kernel) && mentioned_from(file, t, scalar)
                    });
                    if !tested {
                        out.push(Diagnostic::new(
                            &file.path,
                            idx + 1,
                            self.name(),
                            format!(
                                "lane-batched kernel `{kernel}` is not pinned against `{scalar}` \
                                 by this file's tests; add a lane-for-lane equivalence test \
                                 referencing both (or escape with \
                                 `lint:allow(simd-scalar-twin): <where the test lives>`)"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        };
        let cx = Context::new(&ws);
        SimdScalarTwin.check(&cx)
    }

    const GOOD: &str = "pub fn dash(x: u64) -> u64 { x }\n\
        pub fn dash_x8(xs: &[u64; 8]) -> [u64; 8] { xs.map(dash) }\n\
        mod tests {\n\
        fn dash_x8_matches_scalar_twin() { assert_eq!(dash_x8(&[0; 8])[0], dash(0)); }\n\
        }\n";

    #[test]
    fn kernel_with_twin_and_test_passes() {
        assert!(diags("crates/sim/src/rng.rs", GOOD).is_empty());
    }

    #[test]
    fn kernel_without_scalar_twin_is_flagged() {
        let src = "pub fn dash_x8(xs: &[u64; 8]) -> [u64; 8] { *xs }\n\
            mod tests {\n\
            fn covers() { dash_x8(&[0; 8]); }\n\
            }\n";
        let d = diags("crates/sim/src/rng.rs", src);
        // Missing twin *and* no test referencing the (nonexistent) scalar.
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("no scalar reference"));
    }

    #[test]
    fn kernel_without_equivalence_test_is_flagged() {
        let src = "pub fn dash(x: u64) -> u64 { x }\n\
            pub fn dash_x8(xs: &[u64; 8]) -> [u64; 8] { xs.map(dash) }\n";
        let d = diags("crates/core/src/columns.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not pinned"));
    }

    #[test]
    fn callers_of_x8_kernels_are_not_definitions() {
        let src = "fn gather(keys: &[u64; 8]) -> [u64; 8] { other::dash_x8(keys) }\n";
        assert!(diags("crates/core/src/columns.rs", src).is_empty());
    }

    #[test]
    fn non_result_crates_are_out_of_scope() {
        let src = "pub fn dash_x8(xs: &[u64; 8]) -> [u64; 8] { *xs }\n";
        assert!(diags("crates/bench/src/experiments/bench.rs", src).is_empty());
    }
}
