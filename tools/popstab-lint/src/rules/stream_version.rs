//! Rule `stream-version-coherence`: the stream-version constants, the
//! golden-fixture version tables, and the committed benchmark record must
//! all name the same versions.
//!
//! A stream bump is a coordinated event (constant + fixture re-capture +
//! README table row + re-recorded benchmark); the failure mode this rule
//! closes is the *partial* bump — a constant changed without its table row,
//! or a benchmark re-recorded against stale fixtures — which the dynamic
//! tests cannot see because each artifact is self-consistent in isolation.

use crate::diag::Diagnostic;
use crate::rules::{Context, Rule};
use crate::workspace::Workspace;

/// See the module docs.
pub struct StreamVersionCoherence;

/// Where each version constant lives.
const RNG_FILE: &str = "crates/sim/src/rng.rs";
const MATCHING_FILE: &str = "crates/sim/src/matching.rs";
const SNAPSHOT_FILE: &str = "crates/sim/src/snapshot.rs";
const README: &str = "tests/golden/README.md";
const BENCH: &str = "BENCH_engine.json";

impl Rule for StreamVersionCoherence {
    fn name(&self) -> &'static str {
        "stream-version-coherence"
    }

    fn summary(&self) -> &'static str {
        "partial stream bumps — version constants, golden-fixture tables, and \
         `BENCH_engine.json` disagreeing"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let ws = cx.ws;
        let mut out = Vec::new();
        let agent = self.collect_stream(
            ws,
            &mut out,
            "agent",
            RNG_FILE,
            "AGENT_STREAM_VERSION",
            "Agent stream",
            Some("agent_stream_version"),
        );
        let matching = self.collect_stream(
            ws,
            &mut out,
            "matching",
            MATCHING_FILE,
            "MATCHING_STREAM_VERSION",
            "Matching stream",
            Some("matching_stream_version"),
        );
        // The benchmark record is round-semantics provenance; the snapshot
        // format does not affect trajectories, so it has no BENCH key.
        let mut snapshot = self.collect_stream(
            ws,
            &mut out,
            "snapshot",
            SNAPSHOT_FILE,
            "SNAPSHOT_FORMAT_VERSION",
            "Snapshot format",
            None,
        );
        // The snapshot constant documents its layout history as `* vN — …`
        // doc-comment lines; a format bump that forgets to append a history
        // entry is the same partial-bump failure mode as a stale table row.
        let history_loc = format!("{SNAPSHOT_FILE} (format doc history)");
        match ws.file(SNAPSHOT_FILE).and_then(doc_history_max) {
            Some(v) => snapshot.push((history_loc, v)),
            None => out.push(Diagnostic::new(
                &history_loc,
                0,
                self.name(),
                "could not find the snapshot format's `* vN — …` doc history".to_string(),
            )),
        }
        for values in [agent, matching, snapshot] {
            let Some(((first_where, first), rest)) = values.split_first() else {
                continue;
            };
            for (loc, value) in rest {
                if value != first {
                    out.push(Diagnostic::new(
                        loc,
                        0,
                        self.name(),
                        format!(
                            "stream version mismatch: {loc} says v{value} but {first_where} says \
                             v{first}; a stream bump must update the constant, the \
                             `tests/golden/README.md` table, and BENCH_engine.json together"
                        ),
                    ));
                }
            }
        }
        out
    }
}

impl StreamVersionCoherence {
    /// Gathers every artifact's claimed version for one stream as
    /// `(location, version)` pairs, reporting unparseable artifacts.
    /// `json_key: None` means the stream has no benchmark-record entry.
    #[allow(clippy::too_many_arguments)]
    fn collect_stream(
        &self,
        ws: &Workspace,
        out: &mut Vec<Diagnostic>,
        stream: &str,
        const_file: &str,
        const_name: &str,
        readme_section: &str,
        json_key: Option<&str>,
    ) -> Vec<(String, u32)> {
        let mut values = Vec::new();
        let mut require = |loc: &str, value: Option<u32>| match value {
            Some(v) => values.push((loc.to_string(), v)),
            None => out.push(Diagnostic::new(
                loc,
                0,
                self.name(),
                format!("could not find the {stream} stream version here"),
            )),
        };
        require(
            const_file,
            ws.file(const_file).and_then(|f| {
                f.lines
                    .iter()
                    .map(|l| l.code.as_str())
                    .find_map(|code| const_assignment(code, const_name))
            }),
        );
        require(
            README,
            ws.golden_readme
                .as_ref()
                .and_then(|r| readme_current_version(&r.text, readme_section)),
        );
        if let Some(key) = json_key {
            require(
                BENCH,
                ws.bench_json.as_ref().and_then(|b| json_u32(&b.text, key)),
            );
        }
        values
    }
}

/// The highest `* vN — …` entry in a file's comment channel: the claimed
/// tip of the snapshot format's doc history. (For `///` lines the lexer's
/// comment text keeps one leading `/`, hence the extra strip.)
fn doc_history_max(file: &crate::source::SourceFile) -> Option<u32> {
    file.lines
        .iter()
        .filter_map(|line| {
            let text = line
                .comment
                .trim_start()
                .trim_start_matches('/')
                .trim_start();
            let digits: String = text
                .strip_prefix("* v")?
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .max()
}

/// Parses `… const NAME: u32 = N;` out of one code line.
fn const_assignment(code: &str, name: &str) -> Option<u32> {
    let pos = code.find(name)?;
    let rest = &code[pos + name.len()..];
    if !code[..pos].contains("const") {
        return None;
    }
    let eq = rest.find('=')?;
    rest[eq + 1..]
        .trim()
        .trim_end_matches(';')
        .trim()
        .parse()
        .ok()
}

/// The `vN` of the row marked `(current)` in the README table under the
/// `### <section>` heading.
fn readme_current_version(readme: &str, section: &str) -> Option<u32> {
    let mut in_section = false;
    for line in readme.lines() {
        if let Some(head) = line.strip_prefix("###") {
            in_section = head.contains(section);
            continue;
        }
        if in_section && line.starts_with('|') && line.contains("(current)") {
            let cell = line.trim_start_matches('|').split('|').next()?.trim();
            let digits: String = cell
                .strip_prefix('v')?
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            return digits.parse().ok();
        }
    }
    None
}

/// The integer value of `"key": N` in a flat JSON text.
fn json_u32(json: &str, key: &str) -> Option<u32> {
    let needle = format!("\"{key}\"");
    let pos = json.find(&needle)?;
    let rest = json[pos + needle.len()..].trim_start().strip_prefix(':')?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::TextFile;

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        StreamVersionCoherence.check(&Context::new(w))
    }

    fn ws(agent_const: u32, readme_agent: u32, bench_agent: u32) -> Workspace {
        let rng = format!("pub const AGENT_STREAM_VERSION: u32 = {agent_const};\n");
        let matching = "pub const MATCHING_STREAM_VERSION: u32 = 2;\n";
        let snapshot = "/// History:\n///\n/// * v1 — initial layout.\n/// * v2 — trailing checksum.\npub const SNAPSHOT_FORMAT_VERSION: u32 = 2;\n";
        let readme = format!(
            "### Agent stream\n\n| version | scheme |\n| v1 | old |\n| v{readme_agent} (current) | new |\n\n### Matching stream\n| v2 (current) | keyed |\n\n### Snapshot format\n| v1 | initial |\n| v2 (current) | checksum |\n"
        );
        let bench =
            format!("{{\"agent_stream_version\": {bench_agent}, \"matching_stream_version\": 2}}");
        Workspace {
            files: vec![
                SourceFile::new("crates/sim/src/rng.rs", &rng),
                SourceFile::new("crates/sim/src/matching.rs", matching),
                SourceFile::new("crates/sim/src/snapshot.rs", snapshot),
            ],
            manifests: Vec::new(),
            golden_readme: Some(TextFile {
                path: "tests/golden/README.md".into(),
                text: readme,
            }),
            bench_json: Some(TextFile {
                path: "BENCH_engine.json".into(),
                text: bench,
            }),
        }
    }

    #[test]
    fn accepts_coherent_versions() {
        assert!(run(&ws(3, 3, 3)).is_empty());
    }

    #[test]
    fn rejects_a_partial_bump() {
        // The constant moved to v4 but the README and benchmark did not.
        let diags = run(&ws(4, 3, 3));
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.message.contains("mismatch")));
    }

    #[test]
    fn rejects_a_stale_benchmark_record() {
        let diags = run(&ws(3, 3, 2));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].file.contains("BENCH"));
    }

    #[test]
    fn snapshot_format_is_checked_without_a_bench_record() {
        let mut w = ws(3, 3, 3);
        // The snapshot constant bumped without its README table row; the
        // (nonexistent) benchmark key must NOT be demanded for this stream.
        w.files[2] = SourceFile::new(
            "crates/sim/src/snapshot.rs",
            "/// * v1 — initial.\n/// * v2 — checksum.\n/// * v3 — future.\npub const SNAPSHOT_FORMAT_VERSION: u32 = 3;\n",
        );
        let diags = run(&w);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("mismatch"));
        assert!(diags[0].file.contains("README"));
    }

    #[test]
    fn stale_doc_history_is_a_finding() {
        let mut w = ws(3, 3, 3);
        // Constant and README agree on v2, but the doc history stops at v1:
        // the partial bump is caught even though the table was updated.
        w.files[2] = SourceFile::new(
            "crates/sim/src/snapshot.rs",
            "/// * v1 — initial layout.\npub const SNAPSHOT_FORMAT_VERSION: u32 = 2;\n",
        );
        let diags = run(&w);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].file.contains("doc history"), "{}", diags[0].file);
        assert!(diags[0].message.contains("mismatch"));
    }

    #[test]
    fn a_missing_doc_history_is_reported() {
        let mut w = ws(3, 3, 3);
        w.files[2] = SourceFile::new(
            "crates/sim/src/snapshot.rs",
            "pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;\n",
        );
        let diags = run(&w);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("could not find"));
    }

    #[test]
    fn missing_artifacts_are_reported() {
        let mut w = ws(3, 3, 3);
        w.bench_json = None;
        let diags = run(&w);
        assert_eq!(diags.len(), 2); // one per stream
        assert!(diags.iter().all(|d| d.message.contains("could not find")));
    }
}
