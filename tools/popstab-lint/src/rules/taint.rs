//! Rule `taint-ambient-nondeterminism`: no nondeterminism source may be
//! reachable from result-affecting code — interprocedurally.
//!
//! The engine's determinism contract makes every trajectory a pure function
//! of `(seed, RunSpec)`. Any ambient read on a result path silently breaks
//! that — and unlike a stream bump, it breaks it *unreproducibly*, so the
//! golden fixtures may keep passing while cross-host runs diverge. The PR 6
//! ancestor of this rule (`forbid-ambient-nondeterminism`) banned the
//! sources per line and per crate, which missed the dangerous shape
//! entirely: a helper fn outside the result crates calling
//! `SystemTime::now()` that a result-crate fn then calls. This rule walks
//! the item graph instead: every fn in the workspace is scanned for
//! sources (`Instant::now`, `SystemTime`, `std::env`, `thread_rng`, and
//! *iterated* `HashMap`/`HashSet` — resolved through `use` and `type`
//! aliases, so renames don't hide them), and a source is a finding exactly
//! when its fn is reachable from a non-test fn in a result-affecting crate
//! over approximate call edges. Test code neither roots nor carries taint.
//!
//! Findings anchor at the source line — that is where the escape comment
//! belongs, next to the read it justifies:
//! `lint:allow(taint-ambient-nondeterminism): <why it cannot reach a result>`.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::rules::{Context, Rule, RESULT_CRATES};

/// See the module docs.
pub struct TaintAmbientNondeterminism;

/// Sources matched against alias-resolved paths (prefix at `::` boundary).
const PATH_SOURCES: &[(&str, &str)] = &[
    ("std::time::Instant::now", "the monotonic clock"),
    ("std::time::SystemTime", "the wall clock"),
    ("std::env", "the process environment"),
    ("rand::thread_rng", "the OS-seeded thread RNG"),
];

/// Sources matched against paths that resolve to no known alias (the
/// author wrote the short spelling with no `use`, or an external-crate
/// path this lint does not model).
const BARE_SOURCES: &[(&str, &str)] = &[
    ("Instant::now", "the monotonic clock"),
    ("SystemTime", "the wall clock"),
    ("thread_rng", "the OS-seeded thread RNG"),
    ("env::var", "the process environment"),
    ("env::args", "the process arguments"),
];

/// Hash containers whose iteration order is per-process random.
const HASH_TYPES: &[&str] = &[
    "std::collections::HashMap",
    "std::collections::HashSet",
    "HashMap",
    "HashSet",
];

/// Methods that observe a container's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn path_matches(path: &str, pattern: &str) -> bool {
    path == pattern
        || (path.len() > pattern.len()
            && path.starts_with(pattern)
            && path[pattern.len()..].starts_with("::"))
}

/// Whether a source file should be treated as result-affecting input:
/// integration tests, benches, and examples under a crate never are.
pub(crate) fn result_scope(path: &str) -> bool {
    RESULT_CRATES.iter().any(|p| path.starts_with(p))
        && !path.contains("/tests/")
        && !path.contains("/benches/")
        && !path.contains("/examples/")
}

impl Rule for TaintAmbientNondeterminism {
    fn name(&self) -> &'static str {
        "taint-ambient-nondeterminism"
    }

    fn summary(&self) -> &'static str {
        "clock / env / OS-RNG / hash-order reads reachable from result-affecting fns, traced \
         through the call graph and `use`/`type` aliases"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let g = &cx.graph;
        // Roots: every non-test fn in a result-affecting crate.
        let roots: Vec<usize> = (0..g.fns.len())
            .filter(|&f| !g.fns[f].is_test && result_scope(&g.fns[f].path))
            .collect();
        let pred = g.bfs(&roots, false);

        let mut out = Vec::new();
        for (f, node) in g.fns.iter().enumerate() {
            if node.is_test || pred[f].is_none() {
                continue;
            }
            let pf = &g.parsed[node.file];
            let span = g.item(f).span.clone();
            let iterates = ITER_METHODS
                .iter()
                .any(|m| pf.span_mentions(span.clone(), m));
            // Dedup per (line, source): a path mentioned twice on a line is
            // one read site to escape, not two findings.
            let mut seen = BTreeSet::new();
            for (line, path) in pf.paths_in(span) {
                let source = PATH_SOURCES
                    .iter()
                    .chain(BARE_SOURCES)
                    .find(|(p, _)| path_matches(&path, p))
                    .map(|&(_, what)| (path.clone(), what.to_string()))
                    .or_else(|| {
                        (iterates && HASH_TYPES.iter().any(|h| path_matches(&path, h))).then(|| {
                            (
                                path.clone(),
                                "a RandomState-ordered container's iteration \
                             order"
                                    .to_string(),
                            )
                        })
                    });
                let Some((spelling, what)) = source else {
                    continue;
                };
                if !seen.insert((line, spelling.clone())) {
                    continue;
                }
                let route = if result_scope(&node.path) {
                    format!("inside result-affecting fn `{}`", node.name)
                } else {
                    format!(
                        "in `{}`, reached from result-affecting code via `{}`",
                        node.name,
                        g.chain(&pred, f)
                    )
                };
                out.push(Diagnostic::new(
                    &node.path,
                    line,
                    self.name(),
                    format!(
                        "`{spelling}` reads {what} {route}; derive the value from the run's \
                         seed, or escape with `lint:allow(taint-ambient-nondeterminism): <why \
                         it cannot reach a result>`"
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::{TextFile, Workspace};

    fn manifest(path: &str, text: &str) -> TextFile {
        TextFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    fn ws(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            files,
            manifests: vec![
                manifest(
                    "Cargo.toml",
                    "[workspace]\nmembers = [\"crates/sim\", \"crates/core\", \"crates/bench\"]\n\
                     [workspace.dependencies]\n\
                     popstab-sim = { path = \"crates/sim\" }\n\
                     popstab-core = { path = \"crates/core\" }\n\
                     rand = { path = \"shims/rand\", package = \"popstab-rand-shim\" }\n",
                ),
                manifest(
                    "crates/sim/Cargo.toml",
                    "[package]\nname = \"popstab-sim\"\n[dependencies]\nrand.workspace = true\n",
                ),
                manifest(
                    "crates/core/Cargo.toml",
                    "[package]\nname = \"popstab-core\"\n[dependencies]\npopstab-sim.workspace = true\n",
                ),
                manifest(
                    "crates/bench/Cargo.toml",
                    "[package]\nname = \"popstab-bench\"\n[dependencies]\npopstab-core.workspace = true\n",
                ),
            ],
            ..Workspace::default()
        }
    }

    fn diags(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let ws = ws(files);
        let cx = Context::new(&ws);
        TaintAmbientNondeterminism.check(&cx)
    }

    #[test]
    fn direct_reads_in_result_crates_are_findings() {
        let d = diags(vec![SourceFile::new(
            "crates/core/src/protocol.rs",
            "use std::time::Instant;\nfn t() -> Instant { Instant::now() }\n\
             fn e() { std::env::var(\"X\").ok(); }\n",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("monotonic clock"));
        assert_eq!(d[0].line, 2);
        assert!(d[1].message.contains("process environment"));
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn laundering_through_a_helper_crate_is_traced() {
        // The dangerous shape the per-line ban missed: the source lives in
        // a helper two hops away (here outside the result crates entirely),
        // and only the call graph connects it to result-affecting code.
        let d = diags(vec![
            SourceFile::new(
                "crates/core/src/protocol.rs",
                "fn step() { stamp_round(); }\n",
            ),
            SourceFile::new(
                "crates/sim/src/clockutil.rs",
                "pub fn stamp_round() -> u64 { wall_nanos() }\n",
            ),
            SourceFile::new(
                "shims/rand/src/wall.rs",
                "use std::time::SystemTime;\n\
                 pub fn wall_nanos() -> u64 { let _ = SystemTime::now(); 0 }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "shims/rand/src/wall.rs");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("wall clock"), "{d:?}");
        assert!(d[0].message.contains("→ wall_nanos"), "{d:?}");
    }

    #[test]
    fn sources_only_reachable_from_non_result_crates_are_clean() {
        let d = diags(vec![SourceFile::new(
            "crates/bench/src/main.rs",
            "use std::time::Instant;\nfn main() { let _ = Instant::now(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_neither_roots_nor_carries_taint() {
        let d = diags(vec![SourceFile::new(
            "crates/sim/src/batch.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn knob() { std::env::var(\"X\").ok(); }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hash_iteration_behind_a_type_alias_is_a_finding() {
        let d = diags(vec![SourceFile::new(
            "crates/adversary/src/lib.rs",
            "use std::collections::HashMap;\ntype Targets = HashMap<u32, u64>;\n\
             fn pick(t: &Targets) -> u64 { t.values().copied().max().unwrap_or(0) }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("iteration order"), "{d:?}");
    }

    #[test]
    fn hash_membership_without_iteration_is_clean() {
        let d = diags(vec![SourceFile::new(
            "crates/adversary/src/lib.rs",
            "use std::collections::HashSet;\n\
             fn member(s: &HashSet<u32>, x: u32) -> bool { s.contains(&x) }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn integration_tests_under_a_result_crate_are_out_of_scope() {
        let d = diags(vec![SourceFile::new(
            "crates/sim/tests/smoke.rs",
            "fn helper() { let _ = std::env::var(\"X\"); }\nfn drive() { helper() }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
