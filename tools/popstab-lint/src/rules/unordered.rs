//! Rule `forbid-unordered-iteration`: no `HashMap`/`HashSet` in
//! result-affecting crates.
//!
//! `std`'s hash containers iterate in `RandomState` order — a fresh random
//! seed per process — so any fold, `max_by_key` tie-break, or collected
//! `Vec` that touches their iteration order is nondeterministic *across
//! processes* even when a single run looks repeatable. Because the hazard
//! is the iteration and iteration is easy to add two callers away from the
//! container, the rule bans the types themselves in result-affecting
//! crates: use `BTreeMap`/`BTreeSet` or sorted vectors, or escape a
//! genuinely membership-only use with
//! `lint:allow(forbid-unordered-iteration)` plus a one-line proof of
//! order-insensitivity.

use crate::diag::Diagnostic;
use crate::lexer::contains_token;
use crate::rules::{Rule, RESULT_CRATES};
use crate::workspace::Workspace;

/// See the module docs.
pub struct ForbidUnorderedIteration;

const TOKENS: &[&str] = &["HashMap", "HashSet"];

impl Rule for ForbidUnorderedIteration {
    fn name(&self) -> &'static str {
        "forbid-unordered-iteration"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in ws.files_under(RESULT_CRATES) {
            for (idx, line) in file.lines.iter().enumerate() {
                if let Some(token) = TOKENS
                    .iter()
                    .find(|token| contains_token(&line.code, token))
                {
                    out.push(Diagnostic::new(
                        &file.path,
                        idx + 1,
                        self.name(),
                        format!(
                            "`{token}` iterates in per-process random order; use \
                             `BTree{}`/sorted vectors, or escape with \
                             `lint:allow(forbid-unordered-iteration): <why order cannot reach a \
                             result>`",
                            &token[4..]
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws_with(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        }
    }

    #[test]
    fn accepts_ordered_containers() {
        let ws = ws_with(
            "crates/sim/src/metrics.rs",
            "use std::collections::BTreeMap;\nlet mut counts: BTreeMap<u32, usize> = BTreeMap::new();\n",
        );
        assert!(ForbidUnorderedIteration.check(&ws).is_empty());
    }

    #[test]
    fn rejects_hash_containers_in_result_crates() {
        let ws = ws_with(
            "crates/adversary/src/lib.rs",
            "use std::collections::HashMap;\nlet mut seen = HashSet::new();\n",
        );
        let diags = ForbidUnorderedIteration.check(&ws);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("BTreeMap"));
        assert!(diags[1].message.contains("BTreeSet"));
    }

    #[test]
    fn non_result_crates_may_hash() {
        let ws = ws_with(
            "crates/bench/src/scenario.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(ForbidUnorderedIteration.check(&ws).is_empty());
    }
}
