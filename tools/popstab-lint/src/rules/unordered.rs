//! Rule `forbid-unordered-iteration`: no `HashMap`/`HashSet` in
//! result-affecting crates.
//!
//! `std`'s hash containers iterate in `RandomState` order — a fresh random
//! seed per process — so any fold, `max_by_key` tie-break, or collected
//! `Vec` that touches their iteration order is nondeterministic *across
//! processes* even when a single run looks repeatable. Because the hazard
//! is the iteration and iteration is easy to add two callers away from the
//! container, the rule bans the types themselves in result-affecting
//! crates: use `BTreeMap`/`BTreeSet` or sorted vectors, or escape a
//! genuinely membership-only use with
//! `lint:allow(forbid-unordered-iteration)` plus a one-line proof of
//! order-insensitivity.

use crate::diag::Diagnostic;
use crate::lexer::contains_token;
use crate::rules::{Context, Rule, RESULT_CRATES};

/// See the module docs.
pub struct ForbidUnorderedIteration;

const TOKENS: &[&str] = &["HashMap", "HashSet"];

impl Rule for ForbidUnorderedIteration {
    fn name(&self) -> &'static str {
        "forbid-unordered-iteration"
    }

    fn summary(&self) -> &'static str {
        "`HashMap`/`HashSet` (per-process `RandomState` iteration order) anywhere in a \
         result-affecting crate"
    }

    fn check(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in cx.ws.files_under(RESULT_CRATES) {
            for (idx, line) in file.lines.iter().enumerate() {
                if let Some(token) = TOKENS
                    .iter()
                    .find(|token| contains_token(&line.code, token))
                {
                    out.push(Diagnostic::new(
                        &file.path,
                        idx + 1,
                        self.name(),
                        format!(
                            "`{token}` iterates in per-process random order; use \
                             `BTree{}`/sorted vectors, or escape with \
                             `lint:allow(forbid-unordered-iteration): <why order cannot reach a \
                             result>`",
                            &token[4..]
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![SourceFile::new(path, src)],
            ..Workspace::default()
        };
        let cx = Context::new(&ws);
        ForbidUnorderedIteration.check(&cx)
    }

    #[test]
    fn accepts_ordered_containers() {
        let d = diags(
            "crates/sim/src/metrics.rs",
            "use std::collections::BTreeMap;\nlet mut counts: BTreeMap<u32, usize> = BTreeMap::new();\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn rejects_hash_containers_in_result_crates() {
        let d = diags(
            "crates/adversary/src/lib.rs",
            "use std::collections::HashMap;\nlet mut seen = HashSet::new();\n",
        );
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("BTreeMap"));
        assert!(d[1].message.contains("BTreeSet"));
    }

    #[test]
    fn non_result_crates_may_hash() {
        let d = diags(
            "crates/bench/src/scenario.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(d.is_empty());
    }
}
