//! Rule `unused-allow`: escapes must keep earning their keep.
//!
//! A `lint:allow` is a recorded exception to the determinism contract; the
//! moment the finding it silenced disappears (the code moved, the rule got
//! smarter), the stale escape is a hole waiting for new code to crawl
//! through unreviewed. So an allow that suppresses nothing is itself a
//! finding — delete it, and if the hazard comes back the rule will say so.
//!
//! This rule is implemented by the engine ([`crate::run_lint`]), which is
//! the only place that knows which allows actually covered a finding: the
//! registry entry here exists so the rule has a name (`lint:allow` can
//! reference it), a docs row, and a place in the catalogue. `check`
//! therefore returns nothing.

use crate::diag::Diagnostic;
use crate::rules::{Context, Rule};

/// See the module docs.
pub struct UnusedAllow;

impl Rule for UnusedAllow {
    fn name(&self) -> &'static str {
        "unused-allow"
    }

    fn summary(&self) -> &'static str {
        "`lint:allow` escapes that no longer suppress any finding (stale exceptions rot into \
         holes)"
    }

    fn check(&self, _cx: &Context) -> Vec<Diagnostic> {
        Vec::new() // engine-implemented; see the module docs
    }
}
