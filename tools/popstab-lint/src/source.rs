//! Lexed source files and the `lint:allow` escape protocol.
//!
//! Escapes are explicit, per-rule, and always carry a justification:
//!
//! * `// lint:allow(<rule>): <why>` — suppresses `<rule>` on the same line,
//!   or (when written as a comment line) on the next code line below the
//!   contiguous comment block it belongs to;
//! * `// lint:allow-file(<rule>): <why>` — suppresses `<rule>` for the whole
//!   file; must appear within the first [`FILE_ALLOW_WINDOW`] lines so the
//!   escape is visible where readers look for module-level contracts.
//!
//! A malformed escape (unknown rule, missing justification, misplaced
//! `allow-file`) is itself a diagnostic: an allow that cannot be audited is
//! a hole in the gate, not an escape valve.

use crate::diag::Diagnostic;
use crate::lexer::{lex, LexedLine};

/// File-level allows must appear within this many leading lines.
pub const FILE_ALLOW_WINDOW: usize = 20;

/// Justifications shorter than this are rubber stamps, not arguments.
pub const MIN_JUSTIFICATION: usize = 15;

/// One parsed allow escape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the escape comment sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether this is a `lint:allow-file` escape.
    pub file_wide: bool,
    /// The justification text after the closing `):`.
    pub justification: String,
}

/// A lexed source file plus its parsed allow escapes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// Per-line code/comment channels.
    pub lines: Vec<LexedLine>,
    /// Parsed `lint:allow` escapes, in line order.
    pub allows: Vec<Allow>,
    /// Escapes that could not be parsed: `(line, problem)`.
    pub malformed_allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Lexes `text` into a source file at workspace-relative `path`.
    pub fn new(path: &str, text: &str) -> SourceFile {
        let lines = lex(text);
        let mut allows = Vec::new();
        let mut malformed = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            // A directive starts its comment; `lint:allow` mentioned
            // mid-prose (documentation about the syntax) is not an escape.
            let text = line.comment.trim_start();
            if !text.starts_with("lint:allow") {
                continue;
            }
            match parse_allow(text, idx + 1) {
                Ok((allow, _consumed)) => allows.push(allow),
                Err(problem) => malformed.push((idx + 1, problem)),
            }
        }
        SourceFile {
            path: path.to_string(),
            lines,
            allows,
            malformed_allows: malformed,
        }
    }

    /// Whether `rule` is suppressed on 1-based `line`: by a same-line
    /// escape, by an escape in the contiguous comment block directly above,
    /// or by a file-wide escape in the leading window.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        !self.covering_allows(rule, line).is_empty()
    }

    /// Indices into [`SourceFile::allows`] of every escape that covers
    /// `rule` on 1-based `line`. The engine marks *all* of them used, so a
    /// redundant pair (file-wide plus same-line) is not half-reported as
    /// stale.
    pub fn covering_allows(&self, rule: &str, line: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (idx, allow) in self.allows.iter().enumerate() {
            if allow.rule != rule {
                continue;
            }
            let covers = if allow.file_wide {
                allow.line <= FILE_ALLOW_WINDOW
            } else {
                // A same-line escape, or an allow written as its own comment
                // line covering the next code line below its comment block.
                allow.line == line
                    || (allow.line < line && self.comment_block_reaches(allow.line, line))
            };
            if covers {
                out.push(idx);
            }
        }
        out
    }

    /// Whether every line strictly between 1-based `from` and `to` is
    /// comment-only or blank (so `from`'s comment block ends at `to`), and
    /// `from` itself is a comment-only line.
    fn comment_block_reaches(&self, from: usize, to: usize) -> bool {
        if !self.is_comment_only(from) {
            return false;
        }
        (from + 1..to).all(|l| self.is_comment_only(l) || self.is_blank(l))
    }

    fn is_comment_only(&self, line: usize) -> bool {
        self.lines
            .get(line - 1)
            .is_some_and(|l| l.code.trim().is_empty() && !l.comment.trim().is_empty())
    }

    fn is_blank(&self, line: usize) -> bool {
        self.lines
            .get(line - 1)
            .is_some_and(|l| l.code.trim().is_empty() && l.comment.trim().is_empty())
    }

    /// Diagnostics for malformed or misplaced escapes. `known_rules` is the
    /// registry of valid rule names.
    pub fn allow_diagnostics(&self, known_rules: &[&'static str]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (line, problem) in &self.malformed_allows {
            out.push(Diagnostic::new(
                &self.path,
                *line,
                "lint-allow-syntax",
                problem.clone(),
            ));
        }
        for allow in &self.allows {
            if !known_rules.contains(&allow.rule.as_str()) {
                out.push(Diagnostic::new(
                    &self.path,
                    allow.line,
                    "lint-allow-syntax",
                    format!("allow names unknown rule `{}`", allow.rule),
                ));
            }
            if allow.file_wide && allow.line > FILE_ALLOW_WINDOW {
                out.push(Diagnostic::new(
                    &self.path,
                    allow.line,
                    "lint-allow-syntax",
                    format!(
                        "lint:allow-file must appear within the first {FILE_ALLOW_WINDOW} lines"
                    ),
                ));
            }
        }
        out
    }
}

/// Parses one escape starting at `text` (which begins with `lint:allow`).
/// Returns the allow and the number of bytes consumed.
fn parse_allow(text: &str, line: usize) -> Result<(Allow, usize), String> {
    let (file_wide, after_kw) = if let Some(rest) = text.strip_prefix("lint:allow-file") {
        (true, rest)
    } else if let Some(rest) = text.strip_prefix("lint:allow") {
        (false, rest)
    } else {
        unreachable!("caller guarantees the prefix");
    };
    let Some(open) = after_kw.strip_prefix('(') else {
        return Err("expected `(` after lint:allow — syntax is `lint:allow(<rule>): <why>`".into());
    };
    let Some(close) = open.find(')') else {
        return Err("unclosed `(` in lint:allow".into());
    };
    let rule = open[..close].trim().to_string();
    if rule.is_empty() {
        return Err("empty rule name in lint:allow".into());
    }
    let after_paren = &open[close + 1..];
    let Some(just) = after_paren.strip_prefix(':') else {
        return Err(format!(
            "lint:allow({rule}) needs a justification — syntax is `lint:allow({rule}): <why>`"
        ));
    };
    let justification = just.trim().to_string();
    if justification.is_empty() {
        return Err(format!("lint:allow({rule}) has an empty justification"));
    }
    if justification.len() < MIN_JUSTIFICATION {
        return Err(format!(
            "lint:allow({rule}) justification `{justification}` is too short ({} chars, \
             need ≥ {MIN_JUSTIFICATION}); say *why* the hazard cannot reach a result",
            justification.len()
        ));
    }
    let consumed = text.len() - after_paren.len();
    Ok((
        Allow {
            line,
            rule,
            file_wide,
            justification,
        },
        consumed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_allow_suppresses_that_line_only() {
        let f = SourceFile::new(
            "a.rs",
            "use x; // lint:allow(some-rule): membership only, never iterated\nuse y;",
        );
        assert!(f.is_allowed("some-rule", 1));
        assert!(!f.is_allowed("some-rule", 2));
        assert!(!f.is_allowed("other-rule", 1));
    }

    #[test]
    fn comment_block_allow_covers_the_next_code_line() {
        let src = "fn f() {\n    // lint:allow(some-rule): the read picks a worker count\n    // and worker counts cannot change results.\n    let x = 1;\n    let y = 2;\n}";
        let f = SourceFile::new("a.rs", src);
        assert!(f.is_allowed("some-rule", 4));
        assert!(!f.is_allowed("some-rule", 5));
    }

    #[test]
    fn file_allow_in_window_covers_everything() {
        let src = "//! Module docs.\n// lint:allow-file(some-rule): sets here are only counted\nfn f() {}\nfn g() {}";
        let f = SourceFile::new("a.rs", src);
        assert!(f.is_allowed("some-rule", 3));
        assert!(f.is_allowed("some-rule", 4));
    }

    #[test]
    fn file_allow_outside_window_is_rejected() {
        let mut src = "fn f() {}\n".repeat(FILE_ALLOW_WINDOW);
        src.push_str(
            "// lint:allow-file(some-rule): declared far too late to be visible\nfn g() {}",
        );
        let f = SourceFile::new("a.rs", &src);
        assert!(!f.is_allowed("some-rule", FILE_ALLOW_WINDOW + 2));
        let diags = f.allow_diagnostics(&["some-rule"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("first"));
    }

    #[test]
    fn missing_justification_is_malformed() {
        let f = SourceFile::new("a.rs", "use x; // lint:allow(some-rule)\n");
        assert!(!f.is_allowed("some-rule", 1));
        let diags = f.allow_diagnostics(&["some-rule"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let f = SourceFile::new(
            "a.rs",
            "use x; // lint:allow(no-such-rule): membership only, never iterated\n",
        );
        let diags = f.allow_diagnostics(&["some-rule"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn a_short_justification_is_malformed() {
        // 14 chars is a rubber stamp, not an argument.
        let f = SourceFile::new("a.rs", "use x; // lint:allow(some-rule): just because.\n");
        assert!(!f.is_allowed("some-rule", 1));
        let diags = f.allow_diagnostics(&["some-rule"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("too short"), "{diags:?}");
    }

    #[test]
    fn covering_allows_reports_every_covering_escape() {
        let src = "// lint:allow-file(some-rule): counted only, order never observed\n\
                   use x; // lint:allow(some-rule): membership only, never iterated\n";
        let f = SourceFile::new("a.rs", src);
        // Line 2 is covered by both the file-wide and the same-line escape.
        assert_eq!(f.covering_allows("some-rule", 2), vec![0, 1]);
        assert_eq!(f.covering_allows("some-rule", 5), vec![0]);
        assert!(f.covering_allows("other-rule", 2).is_empty());
    }
}
