//! A token/item layer over the lexer's code channel.
//!
//! The lexer ([`crate::lexer`]) guarantees that string/char contents and
//! comments can never be mistaken for code; this module turns the surviving
//! code channel into a flat token stream and then into *items* — `fn`,
//! `struct`/`enum`/`trait`, `impl`, `mod`, `use`, `type` — each with a
//! token span and a test-context flag. The graph layer
//! ([`crate::graph`]) links items across files; the interprocedural rules
//! (`taint-ambient-nondeterminism`, `sendptr-bounds`) consume both.
//!
//! The parser is deliberately approximate: it never type-checks, it treats
//! the first `{` after a `fn` signature as the body, and it recurses into
//! every brace block it does not otherwise understand (so nested fns,
//! block-local `use`s, and items inside `impl`/`trait` bodies are all
//! found). `macro_rules!` definitions are skipped wholesale — `$`-fragment
//! pseudo-items would only pollute the symbol table. What keeps this sound
//! enough for linting is that braces always balance in lexed Rust, so a
//! misread item can mis-*label* a span but never desynchronize the walk.

use std::collections::BTreeMap;

use crate::lexer::LexedLine;

/// One code token: an identifier/number/lifetime, a `::`, or a single
/// punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: usize,
    /// The token text (identifiers keep their `r#` prefix).
    pub text: String,
}

impl Token {
    /// Whether this token is an identifier or keyword (starts with an
    /// XID-start character, `_`, or `r#`).
    pub fn is_ident(&self) -> bool {
        let t = self.text.strip_prefix("r#").unwrap_or(&self.text);
        t.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    }
}

/// What kind of item a span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Trait,
    Impl,
    Mod,
}

/// One parsed item: a kind, a name, and a half-open token-index span that
/// covers the item keyword through its closing brace or semicolon (for a
/// `fn`, signature *and* body — so "does this fn mention X" is a span scan).
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Token-index span into [`ParsedFile::tokens`].
    pub span: std::ops::Range<usize>,
    /// Whether the item sits in test context (`#[test]`, `#[cfg(test)]`, or
    /// inside a module that does).
    pub is_test: bool,
}

/// A fully parsed file: tokens, items, and the file's name-resolution map.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub tokens: Vec<Token>,
    pub items: Vec<Item>,
    /// Local name → full path, from `use` declarations and `type` aliases
    /// (`use std::time::Instant;` maps `Instant` → `std::time::Instant`;
    /// `type Cache = std::collections::HashMap<..>` maps `Cache` likewise).
    /// Flattened file-wide: block-local `use`s are treated as file-local,
    /// which over-approximates visibility — fine for a lint.
    pub aliases: BTreeMap<String, String>,
}

impl ParsedFile {
    /// Parses the lexed lines of one file.
    pub fn parse(lines: &[LexedLine]) -> ParsedFile {
        let tokens = tokenize(lines);
        let mut p = Parser {
            tokens: &tokens,
            items: Vec::new(),
            uses: BTreeMap::new(),
            type_aliases: Vec::new(),
        };
        p.block(0, tokens.len(), false);
        let items = p.items;
        let type_aliases = p.type_aliases;
        let mut aliases = p.uses;
        // Resolve type-alias right-hand sides through the `use` map once
        // (`type Cache = collections::HashMap<..>` with `use std::collections`
        // still lands on the std path).
        for (name, rhs) in type_aliases {
            let resolved = resolve_path(&aliases, &rhs);
            aliases.entry(name).or_insert(resolved);
        }
        ParsedFile {
            tokens,
            items,
            aliases,
        }
    }

    /// Resolves a `::`-joined path through this file's alias map (first
    /// segment only, like Rust name resolution at the use-declaration level).
    pub fn resolve(&self, path: &str) -> String {
        resolve_path(&self.aliases, path)
    }

    /// The maximal `a::b::c` path sequences inside a token span, resolved
    /// through the file's aliases, as `(line, resolved_path)` pairs.
    pub fn paths_in(&self, span: std::ops::Range<usize>) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        let toks = &self.tokens[span];
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident() {
                i += 1;
                continue;
            }
            let line = toks[i].line;
            let mut path = toks[i].text.clone();
            let mut j = i + 1;
            while j + 1 < toks.len() && toks[j].text == "::" && toks[j + 1].is_ident() {
                path.push_str("::");
                path.push_str(&toks[j + 1].text);
                j += 2;
            }
            out.push((line, resolve_path(&self.aliases, &path)));
            i = j;
        }
        out
    }

    /// Whether any token in `span` equals `ident` exactly.
    pub fn span_mentions(&self, span: std::ops::Range<usize>, ident: &str) -> bool {
        self.tokens[span].iter().any(|t| t.text == ident)
    }
}

fn resolve_path(aliases: &BTreeMap<String, String>, path: &str) -> String {
    let (first, rest) = match path.split_once("::") {
        Some((f, r)) => (f, Some(r)),
        None => (path, None),
    };
    match (aliases.get(first), rest) {
        (Some(full), Some(rest)) => format!("{full}::{rest}"),
        (Some(full), None) => full.clone(),
        (None, _) => path.to_string(),
    }
}

/// Splits the code channels into tokens. Identifiers (including `r#` raw
/// identifiers and numeric literals), lifetimes, `::`, and single
/// punctuation characters; blanked string literals collapse to `"` tokens.
pub fn tokenize(lines: &[LexedLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let mut text: String = chars[start..i].iter().collect();
                // `r#ident`: keep the prefix so `r#type` is never the
                // keyword `type`.
                if text == "r" && chars.get(i) == Some(&'#') {
                    let after = chars.get(i + 1);
                    if after.is_some_and(|&c| c.is_alphabetic() || c == '_') {
                        i += 1;
                        let start = i;
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            i += 1;
                        }
                        text = format!("r#{}", chars[start..i].iter().collect::<String>());
                    }
                }
                out.push(Token {
                    line: idx + 1,
                    text,
                });
                continue;
            }
            if c == '\'' {
                // Lifetime (`'a`) or blanked char literal (`'   '`).
                if chars
                    .get(i + 1)
                    .is_some_and(|&c| c.is_alphabetic() || c == '_')
                {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        line: idx + 1,
                        text: chars[start..i].iter().collect(),
                    });
                } else if let Some(close) = (i + 1..chars.len()).find(|&j| chars[j] == '\'') {
                    out.push(Token {
                        line: idx + 1,
                        text: "'_'".to_string(),
                    });
                    i = close + 1;
                } else {
                    i += 1;
                }
                continue;
            }
            if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    line: idx + 1,
                    text: "::".to_string(),
                });
                i += 2;
                continue;
            }
            out.push(Token {
                line: idx + 1,
                text: c.to_string(),
            });
            i += 1;
        }
    }
    out
}

/// Item-declaring keywords the block walker dispatches on.
const MODIFIERS: &[&str] = &["pub", "unsafe", "async", "default", "extern"];

struct Parser<'a> {
    tokens: &'a [Token],
    items: Vec<Item>,
    uses: BTreeMap<String, String>,
    type_aliases: Vec<(String, String)>,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    /// Index just past the bracket that matches the opener at `open`
    /// (clamped to `end`).
    fn skip_matched(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.text(open) {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.text(i) == o {
                depth += 1;
            } else if self.text(i) == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Walks `[i, end)` as item-position code, recording items and aliases.
    /// `in_test` marks every recorded item as test context.
    fn block(&mut self, mut i: usize, end: usize, in_test: bool) {
        let mut pending_test = false;
        while i < end {
            let t = self.text(i);
            // Attributes: `#[...]` attaches to the next item, `#![...]` to
            // the enclosing block (consumed, never attached).
            if t == "#" {
                let inner = self.text(i + 1) == "!";
                let open = if inner { i + 2 } else { i + 1 };
                if self.text(open) == "[" {
                    let close = self.skip_matched(open, end);
                    if !inner {
                        let toks = &self.tokens[open..close];
                        let has = |s: &str| toks.iter().any(|t| t.text == s);
                        if has("test") && !has("not") {
                            pending_test = true;
                        }
                    }
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            if MODIFIERS.contains(&t) {
                i += 1;
                // `pub(crate)` / `extern "C"`: swallow the qualifier.
                if self.text(i) == "(" {
                    i = self.skip_matched(i, end);
                } else if self.text(i) == "\"" {
                    while self.text(i) == "\"" {
                        i += 1;
                    }
                }
                continue;
            }
            match t {
                "use" => {
                    i = self.parse_use(i + 1, end);
                    pending_test = false;
                }
                "type" => {
                    i = self.parse_type_alias(i + 1, end);
                    pending_test = false;
                }
                "fn" => {
                    i = self.parse_fn(i, end, in_test || pending_test);
                    pending_test = false;
                }
                "mod" => {
                    i = self.parse_mod(i, end, in_test, pending_test);
                    pending_test = false;
                }
                "struct" | "enum" | "union" | "trait" | "impl" => {
                    i = self.parse_type_item(i, end, in_test || pending_test);
                    pending_test = false;
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }` — skip the body wholesale.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    i = self.skip_matched(j, end);
                    pending_test = false;
                }
                "{" => {
                    // A block we do not otherwise understand (fn body
                    // statement, match arm, const block): walk inside so
                    // nested items and block-local `use`s are still found.
                    let close = self.skip_matched(i, end);
                    self.block(i + 1, close.saturating_sub(1), in_test);
                    i = close;
                    pending_test = false;
                }
                _ => {
                    i += 1;
                    if !t.is_empty() && t != "#" {
                        pending_test = false;
                    }
                }
            }
        }
    }

    /// `use a::b::{c, d as e};` starting just past the `use` keyword.
    fn parse_use(&mut self, mut i: usize, end: usize) -> usize {
        let semi = (i..end)
            .find(|&j| self.text(j) == ";")
            .unwrap_or(end.min(i + 64));
        self.parse_use_tree(i, semi, "");
        i = semi + 1;
        i
    }

    /// One use-tree in `[i, end)` with the already-accumulated `prefix`.
    fn parse_use_tree(&mut self, mut i: usize, end: usize, prefix: &str) {
        let mut path = prefix.to_string();
        let mut last_seg = String::new();
        while i < end {
            let t = self.text(i).to_string();
            if t == "::" {
                i += 1;
                continue;
            }
            if t == "{" {
                // Group: each comma-separated subtree extends `path`.
                let close = self.skip_matched(i, end);
                let mut start = i + 1;
                let mut depth = 0usize;
                for j in i + 1..close.saturating_sub(1) {
                    match self.text(j) {
                        "{" => depth += 1,
                        "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            self.parse_use_tree(start, j, &path.clone());
                            start = j + 1;
                        }
                        _ => {}
                    }
                }
                self.parse_use_tree(start, close.saturating_sub(1), &path.clone());
                return;
            }
            if t == "*" {
                return; // glob: nothing nameable to record
            }
            if t == "as" {
                let alias = self.text(i + 1).to_string();
                if !alias.is_empty() && !path.is_empty() {
                    self.uses.insert(alias, path);
                }
                return;
            }
            if self.tokens[i].is_ident() {
                if t == "self" {
                    // `a::b::self` (in a group) names the prefix itself.
                    last_seg = path.rsplit("::").next().unwrap_or("").to_string();
                } else {
                    if !path.is_empty() {
                        path.push_str("::");
                    }
                    path.push_str(&t);
                    last_seg = t;
                }
                i += 1;
                continue;
            }
            break;
        }
        if !last_seg.is_empty() && !path.is_empty() {
            self.uses.insert(last_seg, path);
        }
    }

    /// `type Name = rhs::Path<..>;` starting just past the `type` keyword.
    fn parse_type_alias(&mut self, i: usize, end: usize) -> usize {
        let name = self.text(i).to_string();
        let semi = (i..end).find(|&j| self.text(j) == ";").unwrap_or(end);
        if let Some(eq) = (i..semi).find(|&j| self.text(j) == "=") {
            // First path on the right-hand side (`HashMap` of
            // `HashMap<u32, Vec<u8>>`).
            let mut rhs = String::new();
            let mut j = eq + 1;
            while j < semi {
                let t = self.text(j);
                if self.tokens[j].is_ident() {
                    if !rhs.is_empty() {
                        rhs.push_str("::");
                    }
                    rhs.push_str(t);
                    j += 1;
                    if self.text(j) == "::" {
                        j += 1;
                        continue;
                    }
                    break;
                }
                if t == "&" || t == "'_'" || self.tokens[j].text.starts_with('\'') {
                    j += 1;
                    continue;
                }
                break;
            }
            if !name.is_empty() && !rhs.is_empty() {
                self.type_aliases.push((name, rhs));
            }
        }
        semi + 1
    }

    /// A `fn` item starting at the `fn` keyword. Records the item (span =
    /// keyword through body close) and walks the body for nested items.
    fn parse_fn(&mut self, kw: usize, end: usize, is_test: bool) -> usize {
        if !self.tokens.get(kw + 1).is_some_and(Token::is_ident) {
            return kw + 1; // `fn(u32)` pointer type, not an item
        }
        let name = self.text(kw + 1).to_string();
        let line = self.tokens[kw].line;
        let mut j = kw + 2;
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let span_end = if self.text(j) == "{" {
            let close = self.skip_matched(j, end);
            self.block(j + 1, close.saturating_sub(1), is_test);
            close
        } else {
            j + 1 // trait/extern signature without a body
        };
        self.items.push(Item {
            kind: ItemKind::Fn,
            name,
            line,
            span: kw..span_end,
            is_test,
        });
        span_end
    }

    /// A `mod` item. `mod tests`-style test modules mark everything inside
    /// as test context even without the (conventional) `#[cfg(test)]`.
    fn parse_mod(&mut self, kw: usize, end: usize, in_test: bool, attr_test: bool) -> usize {
        let name = self.text(kw + 1).to_string();
        let line = self.tokens[kw].line;
        let mut j = kw + 2;
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let is_test = in_test || attr_test || name == "tests";
        let span_end = if self.text(j) == "{" {
            let close = self.skip_matched(j, end);
            self.block(j + 1, close.saturating_sub(1), is_test);
            close
        } else {
            j + 1
        };
        self.items.push(Item {
            kind: ItemKind::Mod,
            name,
            line,
            span: kw..span_end,
            is_test,
        });
        span_end
    }

    /// `struct`/`enum`/`union`/`trait`/`impl`. Trait and impl bodies are
    /// walked so their methods become items.
    fn parse_type_item(&mut self, kw: usize, end: usize, is_test: bool) -> usize {
        let keyword = self.text(kw).to_string();
        let kind = match keyword.as_str() {
            "struct" | "union" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "trait" => ItemKind::Trait,
            _ => ItemKind::Impl,
        };
        let line = self.tokens[kw].line;
        // Name: first ident after the keyword for nominal types; for `impl`,
        // the last path ident before the opening brace (`impl Foo for Bar`
        // → `Bar`).
        let mut j = kw + 1;
        let mut name = String::new();
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            if kind != ItemKind::Impl && name.is_empty() && self.tokens[j].is_ident() {
                name = self.text(j).to_string();
            }
            if kind == ItemKind::Impl && self.tokens[j].is_ident() {
                name = self.text(j).to_string();
            }
            // Tuple-struct bodies (`struct Foo(u32);`) hide the `;` inside
            // parens only when a generic default does — skip groups anyway.
            if self.text(j) == "(" || self.text(j) == "[" {
                j = self.skip_matched(j, end);
                continue;
            }
            j += 1;
        }
        let span_end = if self.text(j) == "{" {
            let close = self.skip_matched(j, end);
            if matches!(kind, ItemKind::Trait | ItemKind::Impl) {
                self.block(j + 1, close.saturating_sub(1), is_test);
            }
            close
        } else {
            j + 1
        };
        self.items.push(Item {
            kind,
            name,
            line,
            span: kw..span_end,
            is_test,
        });
        span_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&lex(src))
    }

    fn fns(p: &ParsedFile) -> Vec<(&str, bool)> {
        p.items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| (i.name.as_str(), i.is_test))
            .collect()
    }

    #[test]
    fn fns_and_nested_fns_are_items() {
        let p = parse("fn outer() {\n    fn inner(x: u32) -> u32 { x }\n    inner(1);\n}\n");
        assert_eq!(fns(&p), vec![("inner", false), ("outer", false)]);
        // The outer span covers the inner fn's tokens.
        let outer = p.items.iter().find(|i| i.name == "outer").unwrap();
        assert!(p.span_mentions(outer.span.clone(), "inner"));
    }

    #[test]
    fn impl_methods_and_trait_sigs_are_items() {
        let src = "struct S;\nimpl S {\n    pub fn a(&self) {}\n}\ntrait T {\n    fn b(&self);\n    fn c(&self) { self.b() }\n}\n";
        let p = parse(src);
        let names: Vec<&str> = fns(&p).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(p.items.iter().any(|i| i.kind == ItemKind::Impl));
        assert!(p
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Trait && i.name == "T"));
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_items() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() { helper() }\n}\n#[test]\nfn top_level_case() {}\n";
        let p = parse(src);
        assert_eq!(
            fns(&p),
            vec![
                ("prod", false),
                ("helper", true),
                ("case", true),
                ("top_level_case", true),
            ]
        );
    }

    #[test]
    fn cfg_not_test_is_not_test_context() {
        let p = parse("#[cfg(not(test))]\nfn prod() {}\n");
        assert_eq!(fns(&p), vec![("prod", false)]);
    }

    #[test]
    fn use_aliases_resolve_including_groups_and_renames() {
        let src = "use std::time::Instant;\nuse std::collections::{BTreeMap, HashMap as Map};\nuse crate::engine::{self, Engine};\n";
        let p = parse(src);
        assert_eq!(p.resolve("Instant::now"), "std::time::Instant::now");
        assert_eq!(p.resolve("Map"), "std::collections::HashMap");
        assert_eq!(p.resolve("BTreeMap"), "std::collections::BTreeMap");
        assert_eq!(p.resolve("engine::shard"), "crate::engine::shard");
        assert_eq!(p.resolve("Engine"), "crate::engine::Engine");
        assert_eq!(p.resolve("unknown::path"), "unknown::path");
    }

    #[test]
    fn type_aliases_resolve_through_uses() {
        let src =
            "use std::collections::HashMap;\ntype Cache = HashMap<u32, u64>;\nfn f(c: &Cache) {}\n";
        let p = parse(src);
        assert_eq!(p.resolve("Cache"), "std::collections::HashMap");
        assert_eq!(p.resolve("Cache::new"), "std::collections::HashMap::new");
    }

    #[test]
    fn paths_in_span_resolve_through_aliases() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let p = parse(src);
        let f = p.items.iter().find(|i| i.name == "f").unwrap();
        let paths: Vec<String> = p
            .paths_in(f.span.clone())
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert!(paths.contains(&"std::time::Instant::now".to_string()));
    }

    #[test]
    fn raw_identifiers_never_become_keywords() {
        let p = parse("fn r#type() {}\nfn caller() { r#type(); }\n");
        assert_eq!(fns(&p), vec![("r#type", false), ("caller", false)]);
    }

    #[test]
    fn macro_rules_bodies_produce_no_items() {
        let src = "macro_rules! mk {\n    ($n:ident) => { fn $n() {} };\n}\nfn real() {}\n";
        let p = parse(src);
        assert_eq!(fns(&p), vec![("real", false)]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("fn takes(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(fns(&p), vec![("takes", false)]);
    }

    #[test]
    fn lifetimes_and_char_literals_tokenize_apart() {
        let toks = tokenize(&lex("fn f<'a>(x: &'a str) { g('q') }"));
        assert!(toks.iter().any(|t| t.text == "'a"));
        assert!(toks.iter().any(|t| t.text == "'_'"));
        // The char literal's content never surfaces as an identifier.
        assert!(!toks.iter().any(|t| t.text == "q"));
    }
}
