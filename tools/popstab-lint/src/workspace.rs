//! The lint's view of the workspace: lexed sources, manifests, and the two
//! non-Rust artifacts the coherence rules cross-check (the golden-fixture
//! README and `BENCH_engine.json`).
//!
//! Everything here is std-only by design: the manifest reader is a minimal
//! line-oriented TOML subset (sections, `key = value`, string arrays) that
//! covers exactly what the workspace manifests use.

use std::fs;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// A raw (unlexed) text artifact, e.g. a manifest or a README.
#[derive(Debug, Clone)]
pub struct TextFile {
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// Full contents.
    pub text: String,
}

/// Everything the rules look at.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// All `.rs` files under the scanned roots.
    pub files: Vec<SourceFile>,
    /// The root `Cargo.toml` (index 0) and every member's manifest.
    pub manifests: Vec<TextFile>,
    /// `tests/golden/README.md`, if present.
    pub golden_readme: Option<TextFile>,
    /// `BENCH_engine.json`, if present.
    pub bench_json: Option<TextFile>,
}

/// Directories scanned for Rust sources, relative to the workspace root.
const SOURCE_ROOTS: &[&str] = &["src", "crates", "shims", "tools", "tests", "examples"];

impl Workspace {
    /// Loads the workspace rooted at `root` (the directory holding the
    /// workspace `Cargo.toml`).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for dir in SOURCE_ROOTS {
            collect_rs(root, &root.join(dir), &mut files)?;
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));

        let mut manifests = vec![read_text(root, "Cargo.toml")?];
        for member in manifest_members(&manifests[0].text) {
            let rel = format!("{member}/Cargo.toml");
            if root.join(&rel).is_file() {
                manifests.push(read_text(root, &rel)?);
            }
        }

        Ok(Workspace {
            files,
            manifests,
            golden_readme: read_text(root, "tests/golden/README.md").ok(),
            bench_json: read_text(root, "BENCH_engine.json").ok(),
        })
    }

    /// The root manifest (the workspace `Cargo.toml`).
    pub fn root_manifest(&self) -> Option<&TextFile> {
        self.manifests.first()
    }

    /// Source files whose path starts with any of `prefixes`.
    pub fn files_under<'a>(
        &'a self,
        prefixes: &'a [&'a str],
    ) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| prefixes.iter().any(|p| f.path.starts_with(p)))
    }

    /// The source file at exactly `path`, if loaded.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn read_text(root: &Path, rel: &str) -> std::io::Result<TextFile> {
    Ok(TextFile {
        path: rel.to_string(),
        text: fs::read_to_string(root.join(rel))?,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path: PathBuf = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(&rel, &fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// The `members` array of a workspace manifest (workspace-relative dirs).
pub fn manifest_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in manifest.lines() {
        let mut line = strip_toml_comment(line).trim().to_string();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
            continue;
        }
        if in_workspace && line.starts_with("members") && line.contains('=') {
            in_members = true;
            line = line[line.find('=').unwrap() + 1..].to_string();
        }
        if in_members {
            let closes = line.contains(']');
            for part in line.split(',') {
                let part = part.trim().trim_matches(|c| c == '[' || c == ']').trim();
                let part = part.trim_matches('"');
                if !part.is_empty() && part != "." {
                    members.push(part.to_string());
                }
            }
            if closes {
                in_members = false;
            }
        }
    }
    members
}

/// The `[package] name` of a manifest, if declared.
pub fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = strip_toml_comment(line).trim().to_string();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(value) = value.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// The section names (`[…]` headers) present in a manifest.
pub fn section_names(manifest: &str) -> Vec<String> {
    manifest
        .lines()
        .filter_map(|l| {
            let l = strip_toml_comment(l).trim().to_string();
            (l.starts_with('[') && l.ends_with(']'))
                .then(|| l.trim_matches(|c| c == '[' || c == ']').to_string())
        })
        .collect()
}

/// Whether `section` declares `key` (e.g. `opt-level`) before the next
/// section header.
pub fn section_has_key(manifest: &str, section: &str, key: &str) -> bool {
    let mut in_section = false;
    for line in manifest.lines() {
        let line = strip_toml_comment(line).trim().to_string();
        if line.starts_with('[') {
            in_section = line.trim_matches(|c| c == '[' || c == ']') == section;
            continue;
        }
        if in_section {
            if let Some(rest) = line.strip_prefix(key) {
                if rest.trim_start().starts_with('=') {
                    return true;
                }
            }
        }
    }
    false
}

/// The dependency names declared in `[dependencies]` (not dev-dependencies:
/// dev-only edges cannot reach a shipped result path). Handles both the
/// dotted form (`popstab-sim.workspace = true`) and the inline-table form
/// (`rand = { path = "shims/rand" }`).
pub fn dependency_names(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = strip_toml_comment(line).trim().to_string();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps && line.contains('=') {
            let key: String = line
                .chars()
                .take_while(|&c| c != '.' && c != '=' && !c.is_whitespace())
                .collect();
            if !key.is_empty() {
                out.push(key);
            }
        }
    }
    out
}

/// The `[workspace.dependencies]` name → workspace-relative path map of the
/// root manifest (the renamed shims resolve here too: `rand` → `shims/rand`).
pub fn workspace_dep_dirs(root_manifest: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in root_manifest.lines() {
        let line = strip_toml_comment(line).trim().to_string();
        if line.starts_with('[') {
            in_section = line == "[workspace.dependencies]";
            continue;
        }
        if !in_section || !line.contains('=') {
            continue;
        }
        let key: String = line
            .chars()
            .take_while(|&c| c != '.' && c != '=' && !c.is_whitespace())
            .collect();
        let Some(path_at) = line.find("path") else {
            continue;
        };
        let rest = &line[path_at + 4..];
        let mut quoted = rest.split('"');
        quoted.next();
        if let (false, Some(dir)) = (key.is_empty(), quoted.next()) {
            out.push((key, dir.to_string()));
        }
    }
    out
}

/// Strips a `#` TOML comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
[workspace]
members = [
    "crates/sim", # hot
    "tools/lint",
]

[package]
name = "facade" # the root package

[profile.dev.package.popstab-sim]
opt-level = 3
"#;

    #[test]
    fn members_parse_across_lines_and_comments() {
        assert_eq!(manifest_members(MANIFEST), vec!["crates/sim", "tools/lint"]);
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(package_name(MANIFEST).as_deref(), Some("facade"));
    }

    #[test]
    fn sections_and_keys_resolve() {
        assert!(section_names(MANIFEST).contains(&"profile.dev.package.popstab-sim".to_string()));
        assert!(section_has_key(
            MANIFEST,
            "profile.dev.package.popstab-sim",
            "opt-level"
        ));
        assert!(!section_has_key(MANIFEST, "package", "opt-level"));
    }
}
