//! The lint must exit clean on the committed tree: this is the same check
//! CI runs via `cargo run -p popstab-lint`, pinned here so `cargo test`
//! catches a violation (or a broken rule) without the CI round-trip.

use std::path::PathBuf;

use popstab_lint::run_lint;
use popstab_lint::workspace::Workspace;

fn repo_root() -> PathBuf {
    // tools/popstab-lint -> tools -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn the_current_tree_is_lint_clean() {
    let ws = Workspace::load(&repo_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace scan looks truncated: {} files",
        ws.files.len()
    );
    let diags = run_lint(&ws);
    assert!(
        diags.is_empty(),
        "popstab-lint found {} violation(s) in the tree:\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_binary_exits_zero_on_the_tree_and_nonzero_on_a_seeded_tree() {
    // Clean tree → exit 0.
    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .current_dir(repo_root())
        .output()
        .expect("lint binary runs");
    assert!(
        ok.status.success(),
        "lint failed on the committed tree:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // A workspace seeded with one violation of every rule → exit != 0 and
    // every rule reports.
    let seeded = repo_root()
        .join("target")
        .join(format!("popstab-lint-seeded-{}", std::process::id()));
    let sim = seeded.join("crates/sim/src");
    std::fs::create_dir_all(&sim).expect("mkdir");
    std::fs::write(
        seeded.join("Cargo.toml"),
        // Violates workspace-manifest-invariants: no opt-level overrides.
        "[workspace]\nmembers = [\"crates/sim\"]\n",
    )
    .unwrap();
    std::fs::write(
        seeded.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"popstab-sim\"\n",
    )
    .unwrap();
    std::fs::write(
        sim.join("rng.rs"),
        concat!(
            // stream-version-coherence: constant present, README/JSON absent.
            "pub const AGENT_STREAM_VERSION: u32 = 3;\n",
            "pub const MATCHING_STREAM_VERSION: u32 = 2;\n",
            // forbid-ambient-nondeterminism:
            "fn now() { let _ = Instant::now(); }\n",
            // forbid-unordered-iteration:
            "use std::collections::HashMap;\n",
            // unsafe-needs-safety-comment:
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        ),
    )
    .unwrap();
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .current_dir(&seeded)
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    std::fs::remove_dir_all(&seeded).ok();
    assert!(!bad.status.success(), "seeded tree passed:\n{stdout}");
    for rule in [
        "forbid-ambient-nondeterminism",
        "forbid-unordered-iteration",
        "unsafe-needs-safety-comment",
        "stream-version-coherence",
        "workspace-manifest-invariants",
    ] {
        assert!(stdout.contains(rule), "rule {rule} did not fire:\n{stdout}");
    }
}
