//! The lint must exit clean on the committed tree: this is the same check
//! CI runs via `cargo run -p popstab-lint`, pinned here so `cargo test`
//! catches a violation (or a broken rule) without the CI round-trip. The
//! flip side is pinned too: a scratch workspace seeded with one violation
//! per rule must make every rule fire and the binary exit non-zero —
//! proof the gate actually gates.

use std::path::{Path, PathBuf};

use popstab_lint::run_lint;
use popstab_lint::workspace::Workspace;

fn repo_root() -> PathBuf {
    // tools/popstab-lint -> tools -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn the_current_tree_is_lint_clean() {
    let ws = Workspace::load(&repo_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace scan looks truncated: {} files",
        ws.files.len()
    );
    let diags = run_lint(&ws);
    assert!(
        diags.is_empty(),
        "popstab-lint found {} violation(s) in the tree:\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Writes the seeded workspace: one violation per rule, including the
/// interprocedural laundering shape (a wall-clock read in a non-result
/// shim crate, reachable from `crates/core` through the dependency-filtered
/// call graph).
fn write_seeded_workspace(seeded: &Path) {
    let core = seeded.join("crates/core/src");
    let sim = seeded.join("crates/sim/src");
    let shim = seeded.join("shims/timeutil/src");
    for dir in [&core, &sim, &shim] {
        std::fs::create_dir_all(dir).expect("mkdir");
    }
    std::fs::write(
        seeded.join("Cargo.toml"),
        // Violates workspace-manifest-invariants: no opt-level overrides.
        "[workspace]\nmembers = [\"crates/core\", \"crates/sim\", \"shims/timeutil\"]\n",
    )
    .unwrap();
    std::fs::write(
        seeded.join("crates/core/Cargo.toml"),
        "[package]\nname = \"popstab-core\"\n\n[dependencies]\n\
         timeutil = { path = \"../../shims/timeutil\" }\n",
    )
    .unwrap();
    std::fs::write(
        seeded.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"popstab-sim\"\n",
    )
    .unwrap();
    std::fs::write(
        seeded.join("shims/timeutil/Cargo.toml"),
        "[package]\nname = \"timeutil\"\n",
    )
    .unwrap();

    // taint-ambient-nondeterminism, the laundering shape: the source lives
    // outside the result crates and only the call graph connects it.
    std::fs::write(
        core.join("lib.rs"),
        "pub fn step() -> u64 { wall_stamp() }\n\
         use timeutil::wall_stamp;\n",
    )
    .unwrap();
    std::fs::write(
        shim.join("lib.rs"),
        "use std::time::SystemTime;\n\
         pub fn wall_stamp() -> u64 { let _ = SystemTime::now(); 0 }\n",
    )
    .unwrap();

    std::fs::write(
        sim.join("rng.rs"),
        concat!(
            // stream-version-coherence: constant present, README/JSON absent.
            "pub const AGENT_STREAM_VERSION: u32 = 3;\n",
            "pub const MATCHING_STREAM_VERSION: u32 = 2;\n",
            // taint-ambient-nondeterminism, the direct shape:
            "fn now_tick() -> u64 { let _ = Instant::now(); 0 }\n",
            // forbid-unordered-iteration:
            "use std::collections::HashMap;\n",
            // unsafe-needs-safety-comment:
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
            // sendptr-bounds: raw shard pointer across a dispatch with no
            // shard_range-derived partition.
            "fn par(pool: &Pool, buf: *mut u64) {\n",
            "    let b = SendPtr(buf);\n",
            "    pool.dispatch(&|s| {\n",
            "        // SAFETY: (deliberately bogus — ranges not derived)\n",
            "        unsafe { b.get().add(s).write(0) };\n",
            "    });\n",
            "}\n",
            // float-order-determinism:
            "fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
            // simd-scalar-twin: kernel with no scalar twin, no test.
            "fn dash_x8(xs: &[u64; 8]) -> [u64; 8] { *xs }\n",
            // unused-allow: the set it silenced is long gone.
            "// lint:allow(forbid-unordered-iteration): the hash set below was replaced.\n",
            "use std::collections::BTreeSet;\n",
            // lint-allow-syntax: justification below the 15-char floor.
            "fn g() {} // lint:allow(simd-scalar-twin): elsewhere\n",
        ),
    )
    .unwrap();
}

#[test]
fn the_binary_exits_zero_on_the_tree_and_nonzero_on_a_seeded_tree() {
    // Clean tree → exit 0.
    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .current_dir(repo_root())
        .output()
        .expect("lint binary runs");
    assert!(
        ok.status.success(),
        "lint failed on the committed tree:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // A workspace seeded with one violation of every rule → exit != 0 and
    // every rule reports.
    let seeded = repo_root()
        .join("target")
        .join(format!("popstab-lint-seeded-{}", std::process::id()));
    write_seeded_workspace(&seeded);
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .current_dir(&seeded)
        .output()
        .expect("lint binary runs");
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();

    // Same seeded tree through --format json: findings must be present and
    // the schema versioned (CI asserts the full schema on the clean tree).
    let json_out = std::process::Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .args(["--format", "json"])
        .current_dir(&seeded)
        .output()
        .expect("lint binary runs with --format json");
    let json = String::from_utf8_lossy(&json_out.stdout).to_string();

    std::fs::remove_dir_all(&seeded).ok();
    assert!(!bad.status.success(), "seeded tree passed:\n{stdout}");
    for rule in [
        "taint-ambient-nondeterminism",
        "forbid-unordered-iteration",
        "float-order-determinism",
        "sendptr-bounds",
        "unsafe-needs-safety-comment",
        "simd-scalar-twin",
        "stream-version-coherence",
        "workspace-manifest-invariants",
        "unused-allow",
        "lint-allow-syntax",
    ] {
        assert!(stdout.contains(rule), "rule {rule} did not fire:\n{stdout}");
    }
    // The laundering finding names the cross-crate call chain: the read in
    // the shim was reached *from* result-affecting code.
    assert!(
        stdout.contains("reached from result-affecting code via") && stdout.contains("wall_stamp"),
        "interprocedural taint chain missing:\n{stdout}"
    );
    assert!(
        !json_out.status.success(),
        "json run must also exit nonzero"
    );
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(
        json.contains("\"rule\": \"taint-ambient-nondeterminism\""),
        "{json}"
    );
}
