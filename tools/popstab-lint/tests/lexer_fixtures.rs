//! Table-driven fixtures for the lexer and the item parser.
//!
//! Every rule in this crate trusts two foundations: the lexer's claim that
//! literal contents and comment text never leak into the code channel, and
//! the parser's claim that items and spans are found where they are. These
//! fixtures pin both on the Rust surface syntax that historically breaks
//! hand-rolled lexers — raw strings with `#` guards, nested block comments
//! inside macro bodies, byte strings, the `'a`-lifetime vs `'a'`-char
//! ambiguity, and `r#ident` raw identifiers.

use popstab_lint::lexer::{contains_token, lex};
use popstab_lint::syntax::ParsedFile;

/// One lexer fixture: source, tokens that MUST survive in the code
/// channel, and tokens that MUST NOT appear there.
struct LexCase {
    name: &'static str,
    source: &'static str,
    in_code: &'static [&'static str],
    not_in_code: &'static [&'static str],
    in_comments: &'static [&'static str],
}

const LEX_CASES: &[LexCase] = &[
    LexCase {
        name: "raw string with hash guards hides its contents",
        source: r####"let re = r#"HashMap "quoted" // not a comment"#; let after = 1;"####,
        in_code: &["re", "after"],
        not_in_code: &["HashMap", "quoted", "not a comment"],
        in_comments: &[],
    },
    LexCase {
        name: "raw string with two hashes survives an embedded single-hash close",
        source: "let s = r##\"inner \"# HashMap\"##; let tail = 2;",
        in_code: &["tail"],
        not_in_code: &["HashMap", "inner"],
        in_comments: &[],
    },
    LexCase {
        name: "multiline raw string blanks every line it spans",
        source: "let s = r#\"first\nSystemTime::now()\nlast\"#;\nlet code = 3;",
        in_code: &["code"],
        not_in_code: &["SystemTime", "first", "last"],
        in_comments: &[],
    },
    LexCase {
        name: "nested block comment inside a macro body",
        source: "macro_rules! m { () => { /* outer /* HashSet */ still comment */ inner() }; }",
        in_code: &["macro_rules", "inner"],
        not_in_code: &["HashSet"],
        in_comments: &["outer", "still comment"],
    },
    LexCase {
        name: "byte and raw byte strings are literals too",
        source: "let b = b\"thread_rng\"; let rb = br#\"Instant::now\"#; let ok = 4;",
        in_code: &["ok"],
        not_in_code: &["thread_rng", "Instant"],
        in_comments: &[],
    },
    LexCase {
        name: "lifetime is code, char literal contents are not",
        source: "fn f<'a>(x: &'a str) -> char { 'H' }",
        in_code: &["f", "str", "char"],
        // The char literal's `H` must be blanked; `'a` must not open a
        // string-like state that swallows the rest of the line.
        not_in_code: &["'H'"],
        in_comments: &[],
    },
    LexCase {
        name: "char literal with escape does not open a string state",
        source: "let c = '\\''; let next = HashMap::new();",
        in_code: &["next", "HashMap"],
        not_in_code: &[],
        in_comments: &[],
    },
    LexCase {
        name: "line comment text is comment channel, not code",
        source: "let x = 1; // uses HashMap internally\nlet y = 2;",
        in_code: &["x", "y"],
        not_in_code: &["HashMap"],
        in_comments: &["uses HashMap internally"],
    },
    LexCase {
        name: "string with escaped quote does not end early",
        source: "let s = \"say \\\"HashMap\\\" loudly\"; let z = 5;",
        in_code: &["z"],
        not_in_code: &["HashMap", "loudly"],
        in_comments: &[],
    },
];

#[test]
fn lexer_fixture_table() {
    for case in LEX_CASES {
        let lines = lex(case.source);
        let code: String = lines
            .iter()
            .map(|l| format!("{}\n", l.code))
            .collect::<String>();
        let comments: String = lines
            .iter()
            .map(|l| format!("{}\n", l.comment))
            .collect::<String>();
        for tok in case.in_code {
            assert!(
                lines.iter().any(|l| contains_token(&l.code, tok)) || code.contains(tok),
                "[{}] expected `{tok}` in code channel:\n{code}",
                case.name
            );
        }
        for tok in case.not_in_code {
            assert!(
                !code.contains(tok),
                "[{}] `{tok}` leaked into code channel:\n{code}",
                case.name
            );
        }
        for text in case.in_comments {
            assert!(
                comments.contains(text),
                "[{}] expected `{text}` in comment channel:\n{comments}",
                case.name
            );
        }
    }
}

/// One parser fixture: source, expected `(kind, name)` item list (in
/// order), and whether each is test code.
struct ItemCase {
    name: &'static str,
    source: &'static str,
    fns: &'static [(&'static str, bool)],
}

const ITEM_CASES: &[ItemCase] = &[
    ItemCase {
        name: "raw identifiers parse as fn names",
        source: "fn r#loop() {}\nfn plain() { r#loop(); }",
        fns: &[("r#loop", false), ("plain", false)],
    },
    ItemCase {
        name: "cfg(test) module marks its fns as test code",
        source: "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}",
        fns: &[("live", false), ("helper", true), ("case", true)],
    },
    ItemCase {
        // The walk records an item when its body closes, so the nested fn
        // lands before its enclosing one.
        name: "nested fns are found inside outer bodies",
        source: "fn outer() {\n    fn inner(x: u32) -> u32 { x }\n    inner(1);\n}",
        fns: &[("inner", false), ("outer", false)],
    },
    ItemCase {
        name: "fn pointer types are not definitions",
        source: "fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }",
        fns: &[("real", false)],
    },
    ItemCase {
        name: "lifetimes in signatures do not derail fn parsing",
        source: "fn borrow<'a>(x: &'a [u8]) -> &'a [u8] { x }\nfn after() {}",
        fns: &[("borrow", false), ("after", false)],
    },
];

#[test]
fn parser_fixture_table() {
    use popstab_lint::syntax::ItemKind;
    for case in ITEM_CASES {
        let parsed = ParsedFile::parse(&lex(case.source));
        let got: Vec<(&str, bool)> = parsed
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| (i.name.as_str(), i.is_test))
            .collect();
        let want: Vec<(&str, bool)> = case.fns.to_vec();
        assert_eq!(got, want, "[{}]", case.name);
    }
}

#[test]
fn aliases_resolve_through_use_and_type_declarations() {
    let src = "use std::time::Instant;\nuse std::collections::HashMap as Map;\n\
               type Cache = Map<u32, u64>;\nfn f() {}\n";
    let parsed = ParsedFile::parse(&lex(src));
    assert_eq!(parsed.resolve("Instant::now"), "std::time::Instant::now");
    assert_eq!(parsed.resolve("Map"), "std::collections::HashMap");
    assert_eq!(parsed.resolve("Cache"), "std::collections::HashMap");
    assert_eq!(parsed.resolve("Untouched::path"), "Untouched::path");
}
