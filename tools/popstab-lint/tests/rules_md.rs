//! Docs-drift gate: the facade's embedded rule table must match the
//! registry.
//!
//! The rule catalogue is documented twice outside this crate — in the
//! facade crate docs (`src/lib.rs`, the "Determinism contract" section)
//! and implicitly in every `lint:allow` that names a rule. The first copy
//! is generated (`popstab-lint --rules-md`); this test is what makes
//! "generated" true: add, rename, or reword a rule and the build fails
//! until the committed docs are regenerated.

use std::path::Path;
use std::process::Command;

use popstab_lint::rules::rules_markdown;

/// The workspace root, from this crate's position at `tools/popstab-lint`.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("tools/popstab-lint sits two levels below the workspace root")
}

#[test]
fn facade_docs_embed_the_generated_rule_table() {
    let lib = workspace_root().join("src/lib.rs");
    let text = std::fs::read_to_string(&lib).expect("read facade src/lib.rs");
    // The facade embeds the table as doc comments: every rendered line,
    // in order, prefixed with `//! `.
    let expected: String = rules_markdown()
        .lines()
        .map(|l| format!("//! {l}\n"))
        .collect();
    assert!(
        text.contains(&expected),
        "src/lib.rs rule table is out of date — regenerate it with\n\
         `cargo run -p popstab-lint -- --rules-md` (prefix each line with `//! `).\n\
         expected block:\n{expected}"
    );
}

#[test]
fn crate_docs_embed_the_generated_rule_table() {
    // This crate's own lib.rs documents the same table; it must not rot
    // either.
    let lib = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lib.rs");
    let text = std::fs::read_to_string(&lib).expect("read popstab-lint src/lib.rs");
    let expected: String = rules_markdown()
        .lines()
        .map(|l| format!("//! {l}\n"))
        .collect();
    assert!(
        text.contains(&expected),
        "tools/popstab-lint/src/lib.rs rule table is out of date — regenerate with\n\
         `cargo run -p popstab-lint -- --rules-md`.\nexpected block:\n{expected}"
    );
}

#[test]
fn rules_md_flag_prints_the_table_and_exits_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_popstab-lint"))
        .arg("--rules-md")
        .output()
        .expect("run popstab-lint --rules-md");
    assert!(out.status.success(), "--rules-md must exit 0");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        rules_markdown(),
        "--rules-md output must be exactly the registry table"
    );
}
